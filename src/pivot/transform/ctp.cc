// Constant propagation.
//
// Table 2:  pre_pattern   S_i: type(opr_2) == const;
//                         S_j: opr(pos) == S_i.opr_2
//           actions       Modify(opr(S_j, pos), S_i.opr_2)
//           post_pattern  S_j: opr(pos) = S_i.opr_2
// Legality core: the only definition of the variable reaching the use is
// the constant assignment S_i.
#include "pivot/ir/printer.h"
#include "pivot/support/diagnostics.h"
#include "pivot/transform/all_transforms.h"

namespace pivot {
namespace {

bool IsConstDef(const Stmt& s) {
  return s.kind == StmtKind::kAssign && s.lhs->kind == ExprKind::kVarRef &&
         IsConst(*s.rhs);
}

class Ctp final : public Transformation {
 public:
  TransformKind kind() const override { return TransformKind::kCtp; }

  std::vector<Opportunity> Find(AnalysisCache& a) const override {
    std::vector<Opportunity> ops;
    // Constant definitions first.
    std::vector<Stmt*> const_defs;
    a.program().ForEachAttached([&](Stmt& s) {
      if (IsConstDef(s)) const_defs.push_back(&s);
    });
    if (const_defs.empty()) return ops;

    const ReachingDefs& reaching = a.reaching();
    a.program().ForEachAttached([&](Stmt& use_stmt) {
      for (Expr* site : ScalarReadSites(use_stmt)) {
        for (Stmt* def : const_defs) {
          if (def == &use_stmt) continue;
          if (site->name != def->lhs->name) continue;
          if (!reaching.OnlyReachingDef(*def, use_stmt, site->name)) continue;
          Opportunity op;
          op.kind = kind();
          op.s1 = def->id;
          op.s2 = use_stmt.id;
          op.expr = site->id;
          op.var = site->name;
          ops.push_back(op);
          break;  // one defining statement suffices per use site
        }
      }
    });
    return ops;
  }

  bool Applicable(AnalysisCache& a, const Opportunity& op) const override {
    Program& p = a.program();
    Stmt* def = p.FindStmt(op.s1);
    Stmt* use = p.FindStmt(op.s2);
    Expr* site = p.FindExpr(op.expr);
    if (def == nullptr || use == nullptr || site == nullptr) return false;
    if (!def->attached || !use->attached) return false;
    if (!IsConstDef(*def) || def->lhs->name != op.var) return false;
    if (site->owner != use || site->kind != ExprKind::kVarRef ||
        site->name != op.var) {
      return false;
    }
    // The read site must be in read position (not the assignment target).
    if (site->parent == nullptr && site->slot == ExprSlot::kLhs) return false;
    return a.reaching().OnlyReachingDef(*def, *use, op.var);
  }

  void Apply(AnalysisCache& a, Journal& journal, const Opportunity& op,
             TransformRecord& rec) const override {
    Program& p = a.program();
    Stmt& def = p.GetStmt(op.s1);
    Expr& site = p.GetExpr(op.expr);
    rec.summary = "CTP: " + op.var + " := " + ExprToString(*def.rhs) +
                  " in " + StmtHeadToString(p.GetStmt(op.s2));
    rec.actions.push_back(
        journal.Modify(site, CloneExpr(*def.rhs), rec.stamp));
  }

  bool CheckSafety(AnalysisCache& a, const Journal& journal,
                   const TransformRecord& rec) const override {
    Program& p = a.program();
    Stmt* def = p.FindStmt(rec.site.s1);
    Stmt* use = p.FindStmt(rec.site.s2);
    if (def == nullptr || use == nullptr) return false;
    if (!def->attached || !use->attached) {
      // A later live transformation may have legitimately consumed the
      // pattern (e.g. DCE deleting the now-dead constant definition).
      return (def->attached || ConsumedByLiveTransformation(journal, *def)) &&
             (use->attached || ConsumedByLiveTransformation(journal, *use));
    }
    if (!IsConstDef(*def) || def->lhs->name != rec.site.var) return false;
    // The propagated constant must still be what S_i assigns.
    const ActionRecord& modify = journal.record(rec.actions.at(0));
    const Expr* propagated = p.FindExpr(modify.new_expr);
    if (propagated == nullptr || !IsConst(*propagated) ||
        ConstValue(*propagated) != ConstValue(*def->rhs)) {
      return false;
    }
    // And S_i must still be the only definition reaching S_j. (The use
    // site itself now holds the constant, which does not perturb reaching
    // definitions of the variable.)
    return a.reaching().OnlyReachingDef(*def, *use, rec.site.var);
  }
};

}  // namespace

const Transformation& CtpTransformation() {
  static const Ctp instance;
  return instance;
}

}  // namespace pivot
