// Common subexpression elimination.
//
// Table 2:  pre_pattern   S_i: A = B op C;  S_j: D = B op C
//           actions       Modify(exp(S_j, B op C), A)
//           post_pattern  S_j: D = A
// Legality core: every path to S_j passes S_i with A, B and C intact
// afterwards (ReachesIntact subsumes the dominance requirement).
#include "pivot/ir/printer.h"
#include "pivot/support/diagnostics.h"
#include "pivot/transform/all_transforms.h"

namespace pivot {
namespace {

// S_i shape: scalar target, binary RHS over scalar variables / constants,
// target not among the operands.
bool IsCseSource(const Stmt& s) {
  if (s.kind != StmtKind::kAssign || s.lhs->kind != ExprKind::kVarRef) {
    return false;
  }
  if (s.rhs->kind != ExprKind::kBinary) return false;
  for (const auto& kid : s.rhs->kids) {
    if (kid->kind != ExprKind::kVarRef && !IsConst(*kid)) return false;
    if (kid->kind == ExprKind::kVarRef && kid->name == s.lhs->name) {
      return false;
    }
  }
  return true;
}

std::vector<int> WatchedNames(AnalysisCache& a, const Stmt& source) {
  std::vector<int> watched;
  auto add = [&](const std::string& name) {
    const int id = a.facts().names.Lookup(name);
    if (id != -1) watched.push_back(id);
  };
  add(source.lhs->name);
  for (const auto& kid : source.rhs->kids) {
    if (kid->kind == ExprKind::kVarRef) add(kid->name);
  }
  return watched;
}

class Cse final : public Transformation {
 public:
  TransformKind kind() const override { return TransformKind::kCse; }

  std::vector<Opportunity> Find(AnalysisCache& a) const override {
    std::vector<Opportunity> ops;
    std::vector<Stmt*> sources;
    a.program().ForEachAttached([&](Stmt& s) {
      if (IsCseSource(s)) sources.push_back(&s);
    });
    if (sources.empty()) return ops;

    a.program().ForEachAttached([&](Stmt& target) {
      if (target.kind != StmtKind::kAssign) return;
      if (target.rhs->kind != ExprKind::kBinary) return;
      for (Stmt* source : sources) {
        if (source == &target) continue;
        if (!ExprEquals(*source->rhs, *target.rhs)) continue;
        if (!ReachesIntact(a.cfg(), a.facts(), *source, target,
                           WatchedNames(a, *source))) {
          continue;
        }
        Opportunity op;
        op.kind = kind();
        op.s1 = source->id;
        op.s2 = target.id;
        op.expr = target.rhs->id;
        op.var = source->lhs->name;
        ops.push_back(op);
        break;
      }
    });
    return ops;
  }

  bool Applicable(AnalysisCache& a, const Opportunity& op) const override {
    Program& p = a.program();
    Stmt* source = p.FindStmt(op.s1);
    Stmt* target = p.FindStmt(op.s2);
    if (source == nullptr || target == nullptr || !source->attached ||
        !target->attached) {
      return false;
    }
    if (!IsCseSource(*source) || source->lhs->name != op.var) return false;
    if (target->kind != StmtKind::kAssign ||
        !ExprEquals(*source->rhs, *target->rhs)) {
      return false;
    }
    return ReachesIntact(a.cfg(), a.facts(), *source, *target,
                         WatchedNames(a, *source));
  }

  void Apply(AnalysisCache& a, Journal& journal, const Opportunity& op,
             TransformRecord& rec) const override {
    Program& p = a.program();
    Stmt& source = p.GetStmt(op.s1);
    Stmt& target = p.GetStmt(op.s2);
    rec.summary = "CSE: " + StmtHeadToString(target) + " := " + op.var +
                  " (was " + ExprToString(*target.rhs) + ")";
    rec.actions.push_back(
        journal.Modify(*target.rhs, MakeVarRef(source.lhs->name),
                       rec.stamp));
  }

  bool CheckSafety(AnalysisCache& a, const Journal& journal,
                   const TransformRecord& rec) const override {
    Program& p = a.program();
    Stmt* source = p.FindStmt(rec.site.s1);
    Stmt* target = p.FindStmt(rec.site.s2);
    if (source == nullptr || target == nullptr) return false;
    if (!source->attached || !target->attached) {
      // Consumed by a later live transformation — not a violation.
      return (source->attached ||
              ConsumedByLiveTransformation(journal, *source)) &&
             (target->attached ||
              ConsumedByLiveTransformation(journal, *target));
    }
    if (source->kind != StmtKind::kAssign || source->lhs == nullptr ||
        source->rhs == nullptr || source->lhs->name != rec.site.var) {
      return false;
    }
    // The source must still compute the very expression that was replaced
    // (owned by the live Modify action) — unless a later live
    // transformation rewrote it in place, in which case the value argument
    // is owned by that transformation's own conditions.
    const ActionRecord& modify = journal.record(rec.actions.at(0));
    if (modify.replaced == nullptr) return false;
    if (!RewrittenByLiveTransformation(journal, rec.stamp, *source->rhs) &&
        (!IsCseSource(*source) ||
         !ExprEquals(*source->rhs, *modify.replaced))) {
      return false;
    }
    return ReachesIntact(a.cfg(), a.facts(), *source, *target,
                         WatchedNames(a, *source));
  }
};

}  // namespace

const Transformation& CseTransformation() {
  static const Cse instance;
  return instance;
}

}  // namespace pivot
