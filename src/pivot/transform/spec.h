// Transformation specifications (the paper's §6 future-work direction).
//
// The paper proposes "to automatically generate code for the detection of
// the disabling actions of the safety and reversibility conditions of
// transformations from the transformation specifications" — the approach
// of Whitfield & Soffa's transformation generator [21]. This module is
// that direction realized for the action level:
//
//   * each transformation declares a *specification*: the shape of its
//     primitive-action sequence (which action kinds, in what multiplicity)
//     and which action kinds can disable its reversibility;
//   * `ValidateRecord` checks an applied transformation's journal entry
//     against its spec (the generator's well-formedness obligation);
//   * `GenericDisablers` derives, from the spec alone, the set of action
//     kinds whose later application may invalidate the post-pattern —
//     matching the hand-written Table-3 analysis, which the tests verify
//     per transformation.
#ifndef PIVOT_TRANSFORM_SPEC_H_
#define PIVOT_TRANSFORM_SPEC_H_

#include <string>
#include <vector>

#include "pivot/actions/journal.h"
#include "pivot/transform/transform.h"

namespace pivot {

// One step of a transformation's action skeleton.
struct ActionStep {
  ActionKind kind = ActionKind::kDelete;
  // How often the step may occur in an application.
  enum class Arity { kOne, kZeroOrMore, kOneOrMore };
  Arity arity = Arity::kOne;
  // For kModify: whether the step is the loop-header variant.
  bool header = false;
};

struct TransformSpec {
  TransformKind transform = TransformKind::kDce;
  // The action skeleton, in application order.
  std::vector<ActionStep> steps;
  // Action kinds that, performed later by another transformation, can
  // disable this transformation's reversibility (derived mechanically:
  // Delete/Move need their location context — disabled by Delete/Copy of
  // context; Modify needs its node — disabled by Modify/Delete/Copy; ...).
  std::vector<ActionKind> reversibility_disablers;

  std::string ToString() const;
};

// The specification of each of the ten transformations.
const TransformSpec& SpecOf(TransformKind kind);

// Derives the reversibility-disabling action kinds from the skeleton
// alone. SpecOf()'s stored `reversibility_disablers` equal this (checked
// by tests): the hand analysis of Table 3 is reproduced mechanically.
std::vector<ActionKind> GenericDisablers(
    const std::vector<ActionStep>& steps);

// Does the record's recorded action sequence match its spec's skeleton?
// Returns an empty string on success, else a diagnostic.
std::string ValidateRecord(const Journal& journal,
                           const TransformRecord& rec);

}  // namespace pivot

#endif  // PIVOT_TRANSFORM_SPEC_H_
