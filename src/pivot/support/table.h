// Plain-text table rendering for benchmark reports.
//
// The benchmark binaries regenerate the paper's tables (see EXPERIMENTS.md);
// TextTable renders aligned ASCII tables comparable side-by-side with the
// published ones.
#ifndef PIVOT_SUPPORT_TABLE_H_
#define PIVOT_SUPPORT_TABLE_H_

#include <string>
#include <vector>

namespace pivot {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Renders with a header rule, e.g.
  //   Name  | Value
  //   ------+------
  //   DCE   | x
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pivot

#endif  // PIVOT_SUPPORT_TABLE_H_
