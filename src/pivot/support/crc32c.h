// CRC32C (Castagnoli) checksums for the durable journal.
//
// Every frame of the write-ahead journal carries a CRC32C of its payload so
// recovery can distinguish a clean prefix from a torn or bit-flipped tail.
// Software table-driven implementation (the journal is I/O bound; a
// hardware instruction would not change any measurement that matters), with
// the standard reflected polynomial 0x82F63B78 and the conventional
// init/final inversion, so values match other CRC32C producers byte for
// byte.
#ifndef PIVOT_SUPPORT_CRC32C_H_
#define PIVOT_SUPPORT_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pivot {

// CRC32C of `len` bytes at `data`. `seed` is a previous Crc32c result for
// incremental computation over split buffers: Crc32c(b, Crc32c(a)) ==
// Crc32c(a + b).
std::uint32_t Crc32c(const void* data, std::size_t len,
                     std::uint32_t seed = 0);

inline std::uint32_t Crc32c(std::string_view data, std::uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

}  // namespace pivot

#endif  // PIVOT_SUPPORT_CRC32C_H_
