// Checked numeric CLI parsing.
//
// The tools used to parse numbers with std::atoi, which turns
// `--retries banana` silently into 0 and lets a negative `--deadline`
// wrap through unsigned casts. These helpers reject non-numeric,
// trailing-garbage and out-of-range input instead, so a typo becomes a
// usage error rather than a silently different workload.
#ifndef PIVOT_SUPPORT_ARGPARSE_H_
#define PIVOT_SUPPORT_ARGPARSE_H_

#include <cstdint>
#include <string>

namespace pivot {

// Parses `text` as a base-10 integer in [min, max]. Returns false (leaving
// *out untouched) when `text` is null, empty, not wholly numeric, or out of
// range. Accepts a leading '-'; no whitespace, no '+', no hex.
bool ParseInt64(const char* text, long long min, long long max,
                long long* out);

// Unsigned variant covering the full uint64 range (seeds).
bool ParseUint64(const char* text, std::uint64_t* out);

// Convenience wrappers for the common tool-flag shapes. On failure they
// print "<flag>: expected integer in [min, max], got '<text>'" to stderr
// and return false, so call sites can `return Usage()`.
bool ParseIntFlag(const char* flag, const char* text, long long min,
                  long long max, long long* out);
bool ParseIntFlag(const char* flag, const char* text, long long min,
                  long long max, int* out);
bool ParseUint64Flag(const char* flag, const char* text, std::uint64_t* out);

}  // namespace pivot

#endif  // PIVOT_SUPPORT_ARGPARSE_H_
