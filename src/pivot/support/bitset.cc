#include "pivot/support/bitset.h"

#include <bit>
#include <sstream>

#include "pivot/support/diagnostics.h"

namespace pivot {

DenseBitset::DenseBitset(std::size_t size) { Resize(size); }

void DenseBitset::Resize(std::size_t size) {
  size_ = size;
  words_.assign((size + kBits - 1) / kBits, 0);
}

bool DenseBitset::Test(std::size_t i) const {
  PIVOT_CHECK(i < size_);
  return (words_[i / kBits] >> (i % kBits)) & 1u;
}

void DenseBitset::Set(std::size_t i) {
  PIVOT_CHECK(i < size_);
  words_[i / kBits] |= std::uint64_t{1} << (i % kBits);
}

void DenseBitset::Reset(std::size_t i) {
  PIVOT_CHECK(i < size_);
  words_[i / kBits] &= ~(std::uint64_t{1} << (i % kBits));
}

void DenseBitset::ClearAll() {
  for (auto& word : words_) word = 0;
}

void DenseBitset::SetAll() {
  for (auto& word : words_) word = ~std::uint64_t{0};
  // Clear bits past the logical end so Count()/Any() stay exact.
  if (size_ % kBits != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << (size_ % kBits)) - 1;
  }
}

void DenseBitset::UnionWith(const DenseBitset& other) {
  PIVOT_CHECK(size_ == other.size_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
}

void DenseBitset::IntersectWith(const DenseBitset& other) {
  PIVOT_CHECK(size_ == other.size_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
}

void DenseBitset::SubtractWith(const DenseBitset& other) {
  PIVOT_CHECK(size_ == other.size_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= ~other.words_[w];
}

bool DenseBitset::Transfer(const DenseBitset& in, const DenseBitset& gen,
                           const DenseBitset& kill, DenseBitset& out) {
  PIVOT_CHECK(in.size_ == gen.size_ && in.size_ == kill.size_ &&
              in.size_ == out.size_);
  bool changed = false;
  for (std::size_t w = 0; w < out.words_.size(); ++w) {
    const std::uint64_t next =
        (in.words_[w] & ~kill.words_[w]) | gen.words_[w];
    if (next != out.words_[w]) {
      out.words_[w] = next;
      changed = true;
    }
  }
  return changed;
}

bool DenseBitset::Any() const {
  for (auto word : words_) {
    if (word != 0) return true;
  }
  return false;
}

std::size_t DenseBitset::Count() const {
  std::size_t total = 0;
  for (auto word : words_) total += static_cast<std::size_t>(std::popcount(word));
  return total;
}

std::vector<std::size_t> DenseBitset::ToIndices() const {
  std::vector<std::size_t> indices;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      indices.push_back(w * kBits + static_cast<std::size_t>(bit));
      word &= word - 1;
    }
  }
  return indices;
}

std::string DenseBitset::ToString() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (std::size_t i : ToIndices()) {
    if (!first) os << ", ";
    first = false;
    os << i;
  }
  os << '}';
  return os.str();
}

bool operator==(const DenseBitset& a, const DenseBitset& b) {
  return a.size_ == b.size_ && a.words_ == b.words_;
}

}  // namespace pivot
