#include "pivot/support/table.h"

#include <algorithm>
#include <sstream>

namespace pivot {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << " | ";
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_row(os, header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c != 0) os << "-+-";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

}  // namespace pivot
