// Dense fixed-width bit vector used by the iterative data-flow solvers.
//
// Reaching definitions, liveness and available expressions all operate on
// sets of definition/expression indices; DenseBitset provides the usual
// union/intersection/difference kernel with word-at-a-time operations.
#ifndef PIVOT_SUPPORT_BITSET_H_
#define PIVOT_SUPPORT_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pivot {

class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(std::size_t size);

  std::size_t size() const { return size_; }

  void Resize(std::size_t size);

  bool Test(std::size_t i) const;
  void Set(std::size_t i);
  void Reset(std::size_t i);
  void ClearAll();
  void SetAll();

  // this |= other. Sizes must match.
  void UnionWith(const DenseBitset& other);
  // this &= other.
  void IntersectWith(const DenseBitset& other);
  // this &= ~other.
  void SubtractWith(const DenseBitset& other);

  // out = (in - kill) | gen, returning whether `out` changed. The standard
  // data-flow transfer step, fused to avoid temporaries in the solver loop.
  static bool Transfer(const DenseBitset& in, const DenseBitset& gen,
                       const DenseBitset& kill, DenseBitset& out);

  bool Any() const;
  std::size_t Count() const;

  // Indices of set bits in increasing order.
  std::vector<std::size_t> ToIndices() const;

  // e.g. "{1, 4, 7}" — used in tests and debug dumps.
  std::string ToString() const;

  friend bool operator==(const DenseBitset& a, const DenseBitset& b);

 private:
  static constexpr std::size_t kBits = 64;
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace pivot

#endif  // PIVOT_SUPPORT_BITSET_H_
