#include "pivot/support/argparse.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace pivot {

bool ParseInt64(const char* text, long long min, long long max,
                long long* out) {
  if (text == nullptr || *text == '\0') return false;
  // Reject the leading-whitespace and '+' forms strtoll would accept; a
  // flag value is either "-?[0-9]+" or a usage error.
  const char* p = text;
  if (*p == '-') ++p;
  if (*p < '0' || *p > '9') return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') return false;
  if (value < min || value > max) return false;
  *out = value;
  return true;
}

bool ParseUint64(const char* text, std::uint64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  if (*text < '0' || *text > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(value);
  return true;
}

bool ParseIntFlag(const char* flag, const char* text, long long min,
                  long long max, long long* out) {
  if (ParseInt64(text, min, max, out)) return true;
  std::fprintf(stderr, "%s: expected integer in [%lld, %lld], got '%s'\n",
               flag, min, max, text != nullptr ? text : "");
  return false;
}

bool ParseIntFlag(const char* flag, const char* text, long long min,
                  long long max, int* out) {
  long long wide = 0;
  if (!ParseIntFlag(flag, text, min, max, &wide)) return false;
  *out = static_cast<int>(wide);
  return true;
}

bool ParseUint64Flag(const char* flag, const char* text, std::uint64_t* out) {
  if (ParseUint64(text, out)) return true;
  std::fprintf(stderr, "%s: expected unsigned integer, got '%s'\n", flag,
               text != nullptr ? text : "");
  return false;
}

}  // namespace pivot
