// Machine-readable benchmark output.
//
// The bench binaries print human tables to stdout; CI additionally wants
// the same numbers in a stable parseable form. BenchJson accumulates rows
// of key/value metrics and writes them as BENCH_<name>.json next to the
// working directory, e.g.
//
//   {"benchmark": "fig4_undo_scaling", "rows": [
//     {"clusters": 4, "mode": "baseline", "rebuilds": 42, ...}, ...]}
//
// Deliberately minimal (flat rows, no nesting) — enough for CI to diff
// metrics across commits without a JSON library dependency.
#ifndef PIVOT_SUPPORT_BENCHJSON_H_
#define PIVOT_SUPPORT_BENCHJSON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pivot {

// True when PIVOT_BENCH_SMOKE is set (non-empty) in the environment.
// Bench mains consult this to shrink workloads and skip the
// google-benchmark timing loops, so CI can run every bench binary as a
// quick smoke test under the `bench-smoke` ctest label.
bool BenchSmokeMode();

class BenchJson {
 public:
  explicit BenchJson(std::string benchmark);

  // Starts a new row; subsequent Int/Num/Str calls fill it.
  BenchJson& Row();
  BenchJson& Int(const std::string& key, std::uint64_t value);
  BenchJson& Num(const std::string& key, double value);
  BenchJson& Str(const std::string& key, const std::string& value);

  std::string Render() const;

  // Writes Render() to `<dir>/BENCH_<benchmark>.json`; returns the path,
  // or an empty string when the file cannot be written.
  std::string WriteFile(const std::string& dir = ".") const;

 private:
  struct Entry {
    std::string key;
    std::string rendered;  // value pre-rendered as a JSON token
  };
  std::string benchmark_;
  std::vector<std::vector<Entry>> rows_;
};

}  // namespace pivot

#endif  // PIVOT_SUPPORT_BENCHJSON_H_
