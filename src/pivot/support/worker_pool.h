// A small persistent worker pool for read-only fan-out work.
//
// The undo engine's parallel safety checking and the analysis cache's
// parallel PrimeAll both need the same shape of concurrency: a short burst
// of independent tasks over shared *immutable* state, joined before any
// mutation resumes. The pool keeps its threads parked between bursts so a
// scan wave that fans out hundreds of safety checks does not pay a
// thread-spawn per wave.
//
// Concurrency contract (what keeps the users TSan-clean):
//   * ParallelFor blocks until every index has completed; work never
//     outlives the call, so the caller may mutate shared state the moment
//     it returns.
//   * Tasks must not mutate shared state (the engine primes all analyses
//     read-only before fanning out); distinct indices may write to
//     distinct result slots.
//   * The first exception thrown by any task is rethrown on the calling
//     thread after the join. Failure is fail-fast: once a task throws, no
//     new indices are claimed (tasks already running finish normally), so
//     a poisoned burst does not grind through the whole index space.
#ifndef PIVOT_SUPPORT_WORKER_POOL_H_
#define PIVOT_SUPPORT_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pivot {

class WorkerPool {
 public:
  // `threads` is the total concurrency including the calling thread, so
  // WorkerPool(4) parks three workers. Values <= 1 create no workers and
  // make ParallelFor run inline.
  explicit WorkerPool(int threads);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Runs fn(i) for every i in [0, n). The calling thread participates.
  // Blocks until all indices are done; rethrows the first task exception.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  // One-shot convenience for heterogeneous task lists (the analysis
  // cache's dependency waves): runs every task, at most `max_threads`
  // concurrently, joins, rethrows the first exception. Spawns transient
  // threads — use a WorkerPool instance for repeated bursts.
  static void RunAll(std::vector<std::function<void()>> tasks,
                     int max_threads);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;   // caller waits for workers to finish
  std::vector<std::thread> workers_;

  // Current burst, guarded by mu_ except for the atomic index cursor.
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> failed_{false};  // a task threw; stop claiming indices
  std::size_t workers_done_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
  bool shutdown_ = false;
};

}  // namespace pivot

#endif  // PIVOT_SUPPORT_WORKER_POOL_H_
