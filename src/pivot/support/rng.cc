#include "pivot/support/rng.h"

#include "pivot/support/diagnostics.h"

namespace pivot {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int Rng::UniformInt(int lo, int hi) {
  PIVOT_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<int>(Next() % span);
}

double Rng::UniformReal() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformReal() < p;
}

std::size_t Rng::Index(std::size_t size) {
  PIVOT_CHECK(size > 0);
  return static_cast<std::size_t>(Next() % size);
}

}  // namespace pivot
