#include "pivot/support/crc32c.h"

#include <array>

namespace pivot {
namespace {

// Reflected CRC32C polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& Table() {
  static const std::array<std::uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t len, std::uint32_t seed) {
  const auto& table = Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace pivot
