#include "pivot/support/diagnostics.h"

#include <sstream>

namespace pivot {

std::string ProgramError::Format(const std::string& message, int line) {
  if (line <= 0) return message;
  std::ostringstream os;
  os << "line " << line << ": " << message;
  return os.str();
}

namespace detail {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::ostringstream os;
  os << "PIVOT_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!message.empty()) os << " — " << message;
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace pivot
