// Strongly typed identifiers used across the library.
//
// Statement and expression nodes carry stable IDs that are never reused for
// the lifetime of a Program: the action journal, the transformation history
// and the APDG/ADAG annotations all refer to nodes by ID, and those
// references must survive arbitrary tree mutation (moves, deletions and
// later resurrections of the same node).
#ifndef PIVOT_SUPPORT_IDS_H_
#define PIVOT_SUPPORT_IDS_H_

#include <cstdint>
#include <functional>

namespace pivot {

// Tag-parameterized integer ID. Distinct tags produce incompatible types so
// a StmtId cannot silently be passed where an ExprId is expected.
template <typename Tag>
class Id {
 public:
  constexpr Id() : value_(0) {}
  constexpr explicit Id(std::uint32_t value) : value_(value) {}

  constexpr std::uint32_t value() const { return value_; }
  constexpr bool valid() const { return value_ != 0; }
  constexpr explicit operator bool() const { return valid(); }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }

 private:
  std::uint32_t value_;
};

struct StmtTag {};
struct ExprTag {};
struct ActionTag {};
struct TransformTag {};

// A statement node in the IR tree.
using StmtId = Id<StmtTag>;
// An expression node within a statement.
using ExprId = Id<ExprTag>;
// A primitive action recorded in the journal.
using ActionId = Id<ActionTag>;

// The order stamp of an applied transformation: its 1-based position in the
// application sequence T = {t_1, ..., t_n} (paper Section 4.1). Stamps are
// assigned once and never reused, even after the transformation is undone.
using OrderStamp = std::uint32_t;
inline constexpr OrderStamp kNoStamp = 0;

inline constexpr StmtId kNoStmt{};
inline constexpr ExprId kNoExpr{};
inline constexpr ActionId kNoAction{};

}  // namespace pivot

namespace std {
template <typename Tag>
struct hash<pivot::Id<Tag>> {
  size_t operator()(pivot::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
}  // namespace std

#endif  // PIVOT_SUPPORT_IDS_H_
