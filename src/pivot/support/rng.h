// Deterministic pseudo-random number generation.
//
// All randomized components (the random program generator, property tests,
// benchmark workloads) draw from an explicit Rng instance so that every
// run is reproducible from a seed. The generator is xoshiro256**, seeded
// via splitmix64.
#ifndef PIVOT_SUPPORT_RNG_H_
#define PIVOT_SUPPORT_RNG_H_

#include <cstdint>
#include <vector>

namespace pivot {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform over the full 64-bit range.
  std::uint64_t Next();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  // Uniform double in [0, 1).
  double UniformReal();

  // True with probability p (clamped to [0,1]).
  bool Chance(double p);

  // Picks a uniformly random element index for a container of `size`
  // elements. Requires size > 0.
  std::size_t Index(std::size_t size);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(Next() % (i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace pivot

#endif  // PIVOT_SUPPORT_RNG_H_
