// Internal-error checking and user-facing diagnostics.
//
// PIVOT_CHECK is used for invariants of the library itself (a failure is a
// bug in pivot, not in the user's program); parse and semantic errors in
// user programs are reported through pivot::Error values instead.
#ifndef PIVOT_SUPPORT_DIAGNOSTICS_H_
#define PIVOT_SUPPORT_DIAGNOSTICS_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace pivot {

// Thrown when a library invariant is violated.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

// Thrown for malformed user programs (parse errors, unknown names, ...).
class ProgramError : public std::runtime_error {
 public:
  ProgramError(std::string message, int line = 0)
      : std::runtime_error(Format(message, line)), line_(line) {}

  int line() const { return line_; }

 private:
  static std::string Format(const std::string& message, int line);
  int line_;
};

namespace detail {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);
}  // namespace detail

}  // namespace pivot

// Always-on invariant check (these guard correctness of undo, which is the
// whole point of the library; the cost is negligible next to analysis).
#define PIVOT_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::pivot::detail::CheckFailed(__FILE__, __LINE__, #expr, "");         \
    }                                                                      \
  } while (0)

#define PIVOT_CHECK_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream pivot_check_os_;                                  \
      pivot_check_os_ << msg;                                              \
      ::pivot::detail::CheckFailed(__FILE__, __LINE__, #expr,              \
                                   pivot_check_os_.str());                 \
    }                                                                      \
  } while (0)

#define PIVOT_UNREACHABLE(msg)                                             \
  ::pivot::detail::CheckFailed(__FILE__, __LINE__, "unreachable", msg)

#endif  // PIVOT_SUPPORT_DIAGNOSTICS_H_
