// Systematic fault injection for the transactional apply/undo paths.
//
// The mutation pipeline is instrumented with named *fault points*
// (PIVOT_FAULT_POINT), each placed at a boundary where the session state is
// internally consistent: the five primitive journal actions
// ("journal.move.pre" / "journal.move.post", ...), inverse-action
// performance ("journal.invert.pre" / ".post"), analysis re-derivation
// ("analysis.rebuild.pre") and the recursive undo cascade
// ("undo.affecting.recurse", "undo.cascade.recurse", "undo.region.pre").
//
// Tests arm the process-wide injector so that crossing a fault point throws
// FaultInjectedError, which the session's transaction layer must absorb by
// rolling back to the last consistent boundary. Two arming modes:
//   * scripted   — fire at the Nth upcoming crossing (of one named point,
//                  or of any point), then disarm; iterating N over every
//                  crossing of an operation exhaustively walks its failure
//                  surface;
//   * probabilistic — every crossing fires with probability p, driven by a
//                  seeded deterministic RNG (soak testing).
// Crossings are counted and (optionally) recorded per point id, so a test
// can assert which fault points an operation actually traverses.
#ifndef PIVOT_SUPPORT_FAULT_INJECTOR_H_
#define PIVOT_SUPPORT_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "pivot/support/diagnostics.h"
#include "pivot/support/rng.h"

namespace pivot {

// Thrown when an armed fault point fires. Derives from ProgramError so the
// surrounding recovery behaviour matches any other mid-operation failure.
class FaultInjectedError : public ProgramError {
 public:
  explicit FaultInjectedError(std::string point)
      : ProgramError("injected fault at " + point), point_(std::move(point)) {}

  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

class FaultInjector {
 public:
  // The process-wide instance every PIVOT_FAULT_POINT reports to.
  static FaultInjector& Instance();

  // --- arming ---
  // Fire at the `countdown`-th upcoming crossing of `point` (1 = the next
  // one), then disarm that script.
  void Arm(const std::string& point, int countdown = 1);

  // Fire at the `countdown`-th upcoming crossing of *any* fault point,
  // then disarm. Iterating countdown = 1, 2, 3, ... until an operation
  // completes un-faulted visits every crossing of that operation.
  void ArmNthCrossing(int countdown);

  // Every crossing fires with probability `probability`, deterministically
  // from `seed`. Stays armed until Disarm/Reset.
  void ArmProbabilistic(double probability, std::uint64_t seed);

  // --- transient faults (retryable I/O failures) ---
  // Make the next `failures` consultations of FailTransient(point) report a
  // failure, then auto-disarm. Unlike the crash scripts above these never
  // throw: the instrumented call site (the WAL's write/fsync retry loop)
  // decides whether to retry or to give up, which is exactly the behaviour
  // under test. Arming more failures than the site's retry budget models a
  // *permanent* fault.
  void ArmTransient(const std::string& point, int failures);

  // Consulted by retryable I/O sites before each attempt; true = fail this
  // attempt (the site simulates errno = EINTR). Never throws.
  bool FailTransient(const char* point);

  void Disarm();  // drop all scripts, transient arms, probabilistic mode
  void Reset();   // Disarm + clear counters and observations

  bool armed() const;

  // --- observation ---
  // When observing, every crossing's point id is recorded (first-crossing
  // order, deduplicated). Cheap enough for tests; off by default.
  void StartObserving();
  void StopObserving();
  const std::vector<std::string>& observed_points() const {
    return observed_;
  }

  std::uint64_t crossings() const { return crossings_; }
  std::uint64_t faults_fired() const { return faults_fired_; }
  std::uint64_t transient_failures_injected() const {
    return transient_injected_;
  }

  // Every fault point compiled into the library, for coverage assertions.
  static const std::vector<std::string>& KnownPoints();

  // The instrumentation hook; throws FaultInjectedError when armed and the
  // script / dice say so. Use via PIVOT_FAULT_POINT.
  void Hit(const char* point);

 private:
  FaultInjector() = default;
  bool ArmedLocked() const;

  // The server crosses fault points from many threads at once (connection
  // threads, the group-commit worker), so the injector is thread-safe: the
  // idle fast path is one relaxed atomic load, everything else is under
  // mu_.
  mutable std::mutex mu_;
  std::atomic<bool> active_{false};  // any script, transient, prob., observing
  bool observing_ = false;
  std::unordered_map<std::string, int> scripted_;  // point -> countdown
  std::unordered_map<std::string, int> transient_;  // point -> failures left
  int any_countdown_ = 0;                          // 0 = off
  double probability_ = 0.0;
  Rng rng_;
  std::uint64_t crossings_ = 0;
  std::uint64_t faults_fired_ = 0;
  std::uint64_t transient_injected_ = 0;
  std::vector<std::string> observed_;
};

}  // namespace pivot

// Crossing a fault point costs one predicted branch when the injector is
// idle, so the instrumentation can sit on the journal's hot paths.
#define PIVOT_FAULT_POINT(point) ::pivot::FaultInjector::Instance().Hit(point)

#endif  // PIVOT_SUPPORT_FAULT_INJECTOR_H_
