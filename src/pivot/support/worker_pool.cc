#include "pivot/support/worker_pool.h"

#include <algorithm>
#include <utility>

namespace pivot {

WorkerPool::WorkerPool(int threads) {
  const int extra = std::max(0, threads - 1);
  workers_.reserve(static_cast<std::size_t>(extra));
  for (int i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    workers_done_ = 0;
    error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller claims indices alongside the workers.
  while (!failed_.load(std::memory_order_relaxed)) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    try {
      fn(i);
    } catch (...) {
      failed_.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
  }

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return workers_done_ == workers_.size(); });
  fn_ = nullptr;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void WorkerPool::WorkerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      fn = fn_;
    }
    while (!failed_.load(std::memory_order_relaxed)) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n_) break;
      try {
        (*fn)(i);
      } catch (...) {
        failed_.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

void WorkerPool::RunAll(std::vector<std::function<void()>> tasks,
                        int max_threads) {
  if (tasks.empty()) return;
  const std::size_t width = std::min<std::size_t>(
      tasks.size(), static_cast<std::size_t>(std::max(1, max_threads)));
  if (width <= 1) {
    for (auto& t : tasks) t();
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  std::exception_ptr error;
  auto drain = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) break;
      try {
        tasks[i]();
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(err_mu);
        if (!error) error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(width - 1);
  for (std::size_t i = 0; i + 1 < width; ++i) threads.emplace_back(drain);
  drain();
  for (std::thread& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace pivot
