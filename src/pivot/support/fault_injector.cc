#include "pivot/support/fault_injector.h"

#include <algorithm>

namespace pivot {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector instance;
  return instance;
}

bool FaultInjector::ArmedLocked() const {
  return !scripted_.empty() || !transient_.empty() || any_countdown_ > 0 ||
         probability_ > 0.0;
}

void FaultInjector::Arm(const std::string& point, int countdown) {
  PIVOT_CHECK_MSG(countdown >= 1, "countdown must be at least 1");
  std::lock_guard<std::mutex> lock(mu_);
  scripted_[point] = countdown;
  active_.store(true, std::memory_order_relaxed);
}

void FaultInjector::ArmNthCrossing(int countdown) {
  PIVOT_CHECK_MSG(countdown >= 1, "countdown must be at least 1");
  std::lock_guard<std::mutex> lock(mu_);
  any_countdown_ = countdown;
  active_.store(true, std::memory_order_relaxed);
}

void FaultInjector::ArmProbabilistic(double probability,
                                     std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  probability_ = std::clamp(probability, 0.0, 1.0);
  rng_ = Rng(seed);
  active_.store(ArmedLocked() || observing_, std::memory_order_relaxed);
}

void FaultInjector::ArmTransient(const std::string& point, int failures) {
  PIVOT_CHECK_MSG(failures >= 1, "failure count must be at least 1");
  std::lock_guard<std::mutex> lock(mu_);
  transient_[point] = failures;
  active_.store(true, std::memory_order_relaxed);
}

bool FaultInjector::FailTransient(const char* point) {
  if (!active_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = transient_.find(point);
  if (it == transient_.end()) return false;
  if (--it->second <= 0) transient_.erase(it);
  ++transient_injected_;
  active_.store(ArmedLocked() || observing_, std::memory_order_relaxed);
  return true;
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  scripted_.clear();
  transient_.clear();
  any_countdown_ = 0;
  probability_ = 0.0;
  active_.store(observing_, std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  scripted_.clear();
  transient_.clear();
  any_countdown_ = 0;
  probability_ = 0.0;
  crossings_ = 0;
  faults_fired_ = 0;
  transient_injected_ = 0;
  observed_.clear();
  observing_ = false;
  active_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ArmedLocked();
}

void FaultInjector::StartObserving() {
  std::lock_guard<std::mutex> lock(mu_);
  observing_ = true;
  active_.store(true, std::memory_order_relaxed);
}

void FaultInjector::StopObserving() {
  std::lock_guard<std::mutex> lock(mu_);
  observing_ = false;
  active_.store(ArmedLocked(), std::memory_order_relaxed);
}

const std::vector<std::string>& FaultInjector::KnownPoints() {
  static const std::vector<std::string> points = {
      "journal.delete.pre",        "journal.delete.post",
      "journal.copy.pre",          "journal.copy.post",
      "journal.move.pre",          "journal.move.post",
      "journal.add.pre",           "journal.add.post",
      "journal.modify.pre",        "journal.modify.post",
      "journal.modify_header.pre", "journal.modify_header.post",
      "journal.invert.pre",        "journal.invert.post",
      "analysis.rebuild.pre",      "undo.affecting.recurse",
      "undo.region.pre",           "undo.cascade.recurse",
      // Durable journal crash points. The .header.post/.mid/.post triple
      // sits between the write() calls of one frame (genuine torn frames);
      // .fsync.post models a crash after the frame is durable but before
      // the in-memory commit is acknowledged.
      "persist.genesis.pre",          "persist.genesis.header.post",
      "persist.genesis.mid",          "persist.genesis.post",
      "persist.genesis.fsync.post",   "persist.txn.pre",
      "persist.txn.header.post",      "persist.txn.mid",
      "persist.txn.post",             "persist.txn.fsync.post",
      "persist.commit.ack.pre",       "persist.snapshot.pre",
      "persist.snapshot.header.post", "persist.snapshot.mid",
      "persist.snapshot.post",        "persist.snapshot.fsync.post",
      "persist.recover.truncate.pre",
      // Journal compaction crash points. The tmp-file frames
      // (.genesis/.snapshot/.txn triples) tear the rewrite before the
      // rename commit point; .rename.pre/.post straddle it. Crash anywhere
      // must leave either the complete old journal or the complete new
      // one.
      "persist.compact.pre",
      "persist.compact.genesis.header.post", "persist.compact.genesis.mid",
      "persist.compact.genesis.post",        "persist.compact.snapshot.header.post",
      "persist.compact.snapshot.mid",        "persist.compact.snapshot.post",
      "persist.compact.txn.header.post",     "persist.compact.txn.mid",
      "persist.compact.txn.post",            "persist.compact.tmp.synced",
      "persist.compact.rename.pre",          "persist.compact.rename.post",
      // Server crash points. server.swal.* frames go to a per-session WAL
      // (no fsync of their own — group commit provides durability), so
      // only the torn-frame triple exists; server.gwal.* is the shared
      // group-commit log, whose sync.post models a crash after the batch
      // fsync but before any waiting client is acknowledged.
      "server.swal.genesis.header.post", "server.swal.genesis.mid",
      "server.swal.genesis.post",        "server.swal.txn.header.post",
      "server.swal.txn.mid",             "server.swal.txn.post",
      "server.swal.snapshot.header.post","server.swal.snapshot.mid",
      "server.swal.snapshot.post",       "server.commit.enqueue.pre",
      "server.batch.pre",                "server.gwal.frame.header.post",
      "server.gwal.frame.mid",           "server.gwal.frame.post",
      "server.gwal.sync.post",           "server.ack.pre",
      "server.recover.reconcile.pre",
      // gwal retention crash points, mirroring persist.compact.*: tmp-file
      // tears before the rename commit point, then the rename straddle.
      "server.gwal.compact.pre",
      "server.gwal.compact.mark.header.post",
      "server.gwal.compact.mark.mid",
      "server.gwal.compact.mark.post",
      "server.gwal.compact.frame.header.post",
      "server.gwal.compact.frame.mid",
      "server.gwal.compact.frame.post",
      "server.gwal.compact.tmp.synced",
      "server.gwal.compact.rename.pre",
      "server.gwal.compact.rename.post",
      // Session eviction (passivation/reactivation) crash points. The
      // .snapshot.* quadruple tears the final durable snapshot; release.pre
      // sits between that fsync and the stub publication; the compact.*
      // family mirrors persist.compact.* for the passivated-WAL rewrite;
      // stub.post is the fully passivated state; reactivate.pre/.post
      // straddle the Session::Recover + reattach of the next request.
      "server.evict.pre",
      "server.evict.snapshot.header.post",
      "server.evict.snapshot.mid",
      "server.evict.snapshot.post",
      "server.evict.snapshot.fsync.post",
      "server.evict.release.pre",
      "server.evict.compact.pre",
      "server.evict.compact.frame.header.post",
      "server.evict.compact.frame.mid",
      "server.evict.compact.frame.post",
      "server.evict.compact.tmp.synced",
      "server.evict.compact.rename.pre",
      "server.evict.compact.rename.post",
      "server.evict.stub.post",
      "server.evict.reactivate.pre",
      "server.evict.reactivate.post",
  };
  return points;
}

void FaultInjector::Hit(const char* point) {
  if (!active_.load(std::memory_order_relaxed)) return;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++crossings_;
    if (observing_) {
      if (std::find(observed_.begin(), observed_.end(), point) ==
          observed_.end()) {
        observed_.emplace_back(point);
      }
    }

    if (any_countdown_ > 0 && --any_countdown_ == 0) fire = true;
    auto it = scripted_.find(point);
    if (it != scripted_.end() && --it->second == 0) {
      scripted_.erase(it);
      fire = true;
    }
    if (!fire && probability_ > 0.0 && rng_.Chance(probability_)) fire = true;
    if (fire) {
      ++faults_fired_;
      active_.store(ArmedLocked() || observing_, std::memory_order_relaxed);
    }
  }
  if (fire) throw FaultInjectedError(point);
}

}  // namespace pivot
