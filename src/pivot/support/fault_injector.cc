#include "pivot/support/fault_injector.h"

#include <algorithm>

namespace pivot {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector instance;
  return instance;
}

void FaultInjector::Arm(const std::string& point, int countdown) {
  PIVOT_CHECK_MSG(countdown >= 1, "countdown must be at least 1");
  scripted_[point] = countdown;
  active_ = true;
}

void FaultInjector::ArmNthCrossing(int countdown) {
  PIVOT_CHECK_MSG(countdown >= 1, "countdown must be at least 1");
  any_countdown_ = countdown;
  active_ = true;
}

void FaultInjector::ArmProbabilistic(double probability,
                                     std::uint64_t seed) {
  probability_ = std::clamp(probability, 0.0, 1.0);
  rng_ = Rng(seed);
  active_ = probability_ > 0.0 || observing_ || any_countdown_ > 0 ||
            !scripted_.empty();
}

void FaultInjector::Disarm() {
  scripted_.clear();
  any_countdown_ = 0;
  probability_ = 0.0;
  active_ = observing_;
}

void FaultInjector::Reset() {
  Disarm();
  crossings_ = 0;
  faults_fired_ = 0;
  observed_.clear();
  observing_ = false;
  active_ = false;
}

bool FaultInjector::armed() const {
  return !scripted_.empty() || any_countdown_ > 0 || probability_ > 0.0;
}

void FaultInjector::StartObserving() {
  observing_ = true;
  active_ = true;
}

void FaultInjector::StopObserving() {
  observing_ = false;
  active_ = armed();
}

const std::vector<std::string>& FaultInjector::KnownPoints() {
  static const std::vector<std::string> points = {
      "journal.delete.pre",        "journal.delete.post",
      "journal.copy.pre",          "journal.copy.post",
      "journal.move.pre",          "journal.move.post",
      "journal.add.pre",           "journal.add.post",
      "journal.modify.pre",        "journal.modify.post",
      "journal.modify_header.pre", "journal.modify_header.post",
      "journal.invert.pre",        "journal.invert.post",
      "analysis.rebuild.pre",      "undo.affecting.recurse",
      "undo.region.pre",           "undo.cascade.recurse",
      // Durable journal crash points. The .header.post/.mid/.post triple
      // sits between the write() calls of one frame (genuine torn frames);
      // .fsync.post models a crash after the frame is durable but before
      // the in-memory commit is acknowledged.
      "persist.genesis.pre",          "persist.genesis.header.post",
      "persist.genesis.mid",          "persist.genesis.post",
      "persist.genesis.fsync.post",   "persist.txn.pre",
      "persist.txn.header.post",      "persist.txn.mid",
      "persist.txn.post",             "persist.txn.fsync.post",
      "persist.commit.ack.pre",       "persist.snapshot.pre",
      "persist.snapshot.header.post", "persist.snapshot.mid",
      "persist.snapshot.post",        "persist.snapshot.fsync.post",
      "persist.recover.truncate.pre",
  };
  return points;
}

void FaultInjector::Hit(const char* point) {
  if (!active_) return;
  ++crossings_;
  if (observing_) {
    if (std::find(observed_.begin(), observed_.end(), point) ==
        observed_.end()) {
      observed_.emplace_back(point);
    }
  }

  bool fire = false;
  if (any_countdown_ > 0 && --any_countdown_ == 0) fire = true;
  auto it = scripted_.find(point);
  if (it != scripted_.end() && --it->second == 0) {
    scripted_.erase(it);
    fire = true;
  }
  if (!fire && probability_ > 0.0 && rng_.Chance(probability_)) fire = true;
  if (!fire) return;

  ++faults_fired_;
  active_ = armed() || observing_;
  throw FaultInjectedError(point);
}

}  // namespace pivot
