#include "pivot/support/benchjson.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "pivot/support/diagnostics.h"

namespace pivot {
namespace {

std::string Quote(const std::string& s) {
  std::ostringstream os;
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
  return os.str();
}

}  // namespace

bool BenchSmokeMode() {
  const char* flag = std::getenv("PIVOT_BENCH_SMOKE");
  return flag != nullptr && *flag != '\0';
}

BenchJson::BenchJson(std::string benchmark)
    : benchmark_(std::move(benchmark)) {}

BenchJson& BenchJson::Row() {
  rows_.emplace_back();
  return *this;
}

BenchJson& BenchJson::Int(const std::string& key, std::uint64_t value) {
  PIVOT_CHECK_MSG(!rows_.empty(), "call Row() before adding values");
  rows_.back().push_back({key, std::to_string(value)});
  return *this;
}

BenchJson& BenchJson::Num(const std::string& key, double value) {
  PIVOT_CHECK_MSG(!rows_.empty(), "call Row() before adding values");
  std::ostringstream os;
  os << value;
  rows_.back().push_back({key, os.str()});
  return *this;
}

BenchJson& BenchJson::Str(const std::string& key, const std::string& value) {
  PIVOT_CHECK_MSG(!rows_.empty(), "call Row() before adding values");
  rows_.back().push_back({key, Quote(value)});
  return *this;
}

std::string BenchJson::Render() const {
  std::ostringstream os;
  os << "{\"benchmark\": " << Quote(benchmark_) << ", \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r == 0 ? "\n" : ",\n") << "  {";
    for (std::size_t e = 0; e < rows_[r].size(); ++e) {
      if (e != 0) os << ", ";
      os << Quote(rows_[r][e].key) << ": " << rows_[r][e].rendered;
    }
    os << '}';
  }
  os << "\n]}\n";
  return os.str();
}

std::string BenchJson::WriteFile(const std::string& dir) const {
  const std::string path = dir + "/BENCH_" + benchmark_ + ".json";
  std::ofstream out(path);
  if (!out) return {};
  out << Render();
  return out ? path : std::string{};
}

}  // namespace pivot
