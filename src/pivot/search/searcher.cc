#include "pivot/search/searcher.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "pivot/ir/diff.h"
#include "pivot/ir/parser.h"
#include "pivot/oracle/oracle.h"
#include "pivot/support/fault_injector.h"
#include "pivot/transform/catalog.h"

namespace pivot {
namespace {

std::uint64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

bool KindFromName(const std::string& name, TransformKind* out) {
  for (const TransformKind kind : AllTransformKinds()) {
    if (name == TransformKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace

const char* SearchModeName(SearchMode mode) {
  return mode == SearchMode::kGreedy ? "greedy" : "anneal";
}

bool ParseSearchMode(const std::string& text, SearchMode* out) {
  if (text == "greedy") {
    *out = SearchMode::kGreedy;
    return true;
  }
  if (text == "anneal") {
    *out = SearchMode::kAnneal;
    return true;
  }
  return false;
}

Searcher::Searcher(Session& session, SearchOptions options)
    : session_(session), options_(std::move(options)), rng_(options_.seed) {}

bool Searcher::Propose(Proposal* out) {
  // A random kind order, then the first kind with any opportunity: one
  // uniform draw over that kind's candidates. Cheaper than enumerating all
  // ten catalogs per step, and every draw comes from the seeded Rng, so
  // the proposal stream is a pure function of (seed, program trajectory).
  std::vector<TransformKind> kinds = AllTransformKinds();
  rng_.Shuffle(kinds);
  for (const TransformKind kind : kinds) {
    std::vector<Opportunity> ops;
    try {
      ops = session_.FindOpportunities(kind);
    } catch (const ProgramError&) {
      // Opportunity matching rebuilds analyses; an injected fault there
      // mutated nothing. Treat the kind as empty this round.
      continue;
    }
    if (ops.empty()) continue;
    const std::size_t index = rng_.Index(ops.size());
    out->kind = kind;
    out->op_index = static_cast<int>(index);
    out->op = ops[index];
    return true;
  }
  return false;
}

bool Searcher::AcceptRegression(double delta, int step) {
  if (options_.mode == SearchMode::kGreedy) return false;
  const double t0 = options_.initial_temperature;
  if (t0 <= 0.0) return false;
  const double tf = std::max(options_.final_temperature, 1e-12);
  const double frac =
      options_.budget > 1
          ? static_cast<double>(step) / (options_.budget - 1)
          : 1.0;
  const double temp = t0 * std::pow(tf / t0, frac);
  return rng_.Chance(std::exp(delta / temp));
}

namespace {

// Scoring triggers analysis re-derivation, whose fault points are armed in
// the injection campaigns right along with the journal's. A fault there is
// outside any transaction — nothing to roll back — but it must not abort
// the whole search, so scoring failures degrade instead of propagating.
bool TryScore(AnalysisCache& analyses, const CostWeights& weights,
              CostSnapshot* out) {
  try {
    *out = ScoreProgram(analyses, weights);
    return true;
  } catch (const ProgramError&) {
    return false;
  }
}

}  // namespace

SearchResult Searcher::Run() {
  SearchResult result;
  TryScore(session_.analyses(), options_.weights, &result.initial_cost);
  double current = result.initial_cost.score;

  // Stamps of live accepted records — the cascade bookkeeping. Kept here
  // (not read back from history each step) so a reject only pays for a
  // full history walk when its UndoSet actually cascaded.
  std::unordered_set<OrderStamp> accepted_live;

  for (int i = 0; i < options_.budget; ++i) {
    Proposal proposal;
    if (!Propose(&proposal)) {
      result.stats.exhausted = true;
      break;
    }
    ++result.stats.proposals;

    SearchStep step;
    step.kind = proposal.kind;
    step.op_index = proposal.op_index;

    OrderStamp stamp = kNoStamp;
    bool apply_ok = true;
    const auto apply_start = std::chrono::steady_clock::now();
    try {
      stamp = session_.Apply(proposal.op);
    } catch (const ProgramError&) {
      // Injected fault or a pre-condition gone stale mid-apply: the
      // session's transaction already rolled everything back, so the
      // search simply moves on — nothing was committed, nothing to undo.
      apply_ok = false;
    }
    result.stats.apply_ns += ElapsedNs(apply_start);
    if (!apply_ok) {
      step.outcome = SearchStep::Outcome::kApplyFailed;
      ++result.stats.apply_failures;
      result.steps.push_back(std::move(step));
      continue;
    }
    step.stamp = stamp;

    // An unscorable proposal (injected analysis fault) is rejected
    // outright: with no delta there is no basis to keep it.
    CostSnapshot after;
    const bool scored =
        TryScore(session_.analyses(), options_.weights, &after);
    step.score_after = scored ? after.score : current;
    const double delta = scored ? after.score - current : -1.0;
    const bool accept =
        scored && (options_.mode == SearchMode::kGreedy
                       ? delta > 0.0
                       : (delta >= 0.0 || AcceptRegression(delta, i)));

    if (accept) {
      step.outcome = SearchStep::Outcome::kAccepted;
      ++result.stats.accepted;
      current = after.score;
      accepted_live.insert(stamp);
      result.steps.push_back(std::move(step));
      continue;
    }

    // Reject: the backtracking path. One UndoSet of the just-applied
    // record, planned through the engine (region-indexed when enabled).
    bool reject_ok = true;
    UndoStats undo_stats;
    const auto undo_start = std::chrono::steady_clock::now();
    try {
      undo_stats = session_.UndoSet({stamp}, nullptr);
    } catch (const ProgramError&) {
      // The undo's transaction rolled back, which *restores* the applied
      // record; the proposal stays, involuntarily accepted.
      reject_ok = false;
    }
    result.stats.undo_ns += ElapsedNs(undo_start);

    if (!reject_ok) {
      step.outcome = SearchStep::Outcome::kRejectFailed;
      ++result.stats.reject_failures;
      current = step.score_after;
      accepted_live.insert(stamp);
      result.steps.push_back(std::move(step));
      continue;
    }

    step.outcome = SearchStep::Outcome::kRejected;
    ++result.stats.rejected;
    result.stats.undo += undo_stats;
    if (undo_stats.transforms_undone > 1) {
      // The reject cascaded into earlier accepted work (an affecting
      // blocker or a revived safety obligation). Record which accepted
      // stamps died so the accepted-prefix replay can mirror it.
      for (auto it = accepted_live.begin(); it != accepted_live.end();) {
        const TransformRecord* rec = session_.history().FindByStamp(*it);
        if (rec == nullptr || rec->undone) {
          step.cascades.push_back(*it);
          ++result.stats.cascaded_records;
          it = accepted_live.erase(it);
        } else {
          ++it;
        }
      }
      std::sort(step.cascades.begin(), step.cascades.end());
      // The cascade changed the program beyond restoring the pre-proposal
      // state; re-anchor the current score.
      CostSnapshot rescored;
      if (TryScore(session_.analyses(), options_.weights, &rescored)) {
        current = rescored.score;
      }
    }
    result.steps.push_back(std::move(step));
  }

  TryScore(session_.analyses(), options_.weights, &result.final_cost);
  return result;
}

// --- accepted-prefix oracle -------------------------------------------------

std::string VerifyAcceptedPrefix(
    const Program& original, const std::vector<SearchStep>& steps,
    Session& searched, const SessionOptions& session_options,
    const std::vector<std::vector<double>>& inputs) {
  Session replay(original.Clone(), session_options);
  std::unordered_map<OrderStamp, OrderStamp> stamp_map;  // searched→replay

  for (std::size_t i = 0; i < steps.size(); ++i) {
    const SearchStep& step = steps[i];
    std::ostringstream at;
    at << "step " << i << " (" << TransformKindName(step.kind) << " #"
       << step.op_index << "): ";
    switch (step.outcome) {
      case SearchStep::Outcome::kApplyFailed:
        break;  // never committed in the searched session
      case SearchStep::Outcome::kAccepted:
      case SearchStep::Outcome::kRejectFailed: {
        // If every reject before this step restored the program exactly,
        // the replay session is in the searched session's proposal-time
        // state and the index resolves to the same opportunity.
        std::vector<Opportunity> ops = replay.FindOpportunities(step.kind);
        if (step.op_index < 0 ||
            static_cast<std::size_t>(step.op_index) >= ops.size()) {
          return at.str() + "opportunity index out of range in replay (" +
                 std::to_string(ops.size()) + " found) — a prior reject " +
                 "did not restore the program";
        }
        try {
          stamp_map[step.stamp] =
              replay.Apply(ops[static_cast<std::size_t>(step.op_index)]);
        } catch (const ProgramError& e) {
          return at.str() + "accepted step failed to re-apply: " + e.what();
        }
        break;
      }
      case SearchStep::Outcome::kRejected: {
        if (step.cascades.empty()) break;  // exact reject: a pure no-op here
        std::vector<OrderStamp> mapped;
        mapped.reserve(step.cascades.size());
        for (const OrderStamp c : step.cascades) {
          auto it = stamp_map.find(c);
          if (it == stamp_map.end()) {
            return at.str() + "cascaded stamp t" + std::to_string(c) +
                   " is not an accepted record in the replay";
          }
          mapped.push_back(it->second);
          stamp_map.erase(it);
        }
        try {
          replay.UndoSet(mapped);
        } catch (const ProgramError& e) {
          return at.str() + "cascade mirror failed to undo: " + e.what();
        }
        break;
      }
    }
  }

  const std::string diff = DiffToString(searched.program(), replay.program());
  if (!diff.empty()) {
    return "final program diverges structurally from the accepted-prefix "
           "replay (searched=left, replay=right):\n" +
           diff;
  }
  SemanticsOracle oracle(replay.program(),
                         inputs.empty() ? DefaultOracleInputs() : inputs);
  const std::string finding = oracle.Check(searched.program());
  if (!finding.empty()) {
    return "final program diverges semantically from the accepted-prefix "
           "replay: " +
           finding;
  }
  return "";
}

// --- traces -----------------------------------------------------------------

namespace {

const char* OutcomeToken(SearchStep::Outcome outcome) {
  switch (outcome) {
    case SearchStep::Outcome::kAccepted:
      return "accept";
    case SearchStep::Outcome::kRejected:
      return "reject";
    case SearchStep::Outcome::kApplyFailed:
      return "apply-fail";
    case SearchStep::Outcome::kRejectFailed:
      return "reject-fail";
  }
  return "?";
}

bool OutcomeFromToken(const std::string& token, SearchStep::Outcome* out) {
  if (token == "accept") {
    *out = SearchStep::Outcome::kAccepted;
  } else if (token == "reject") {
    *out = SearchStep::Outcome::kRejected;
  } else if (token == "apply-fail") {
    *out = SearchStep::Outcome::kApplyFailed;
  } else if (token == "reject-fail") {
    *out = SearchStep::Outcome::kRejectFailed;
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::string SerializeSearchTrace(const SearchTrace& trace) {
  std::ostringstream os;
  os << "# pivot_search trace\n";
  os << "mode " << SearchModeName(trace.mode) << '\n';
  os << "seed " << trace.seed << '\n';
  os << "budget " << trace.budget << '\n';
  for (const SearchStep& step : trace.steps) {
    os << "step " << TransformKindName(step.kind) << ' ' << step.op_index
       << ' ' << OutcomeToken(step.outcome) << '\n';
  }
  os << "source\n" << trace.source;
  return os.str();
}

bool DeserializeSearchTrace(const std::string& text, SearchTrace* out,
                            std::string* error) {
  SearchTrace trace;
  std::istringstream is(text);
  std::string line;
  bool have_source = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string directive;
    ls >> directive;
    if (directive == "mode") {
      std::string mode;
      ls >> mode;
      if (!ParseSearchMode(mode, &trace.mode)) {
        if (error != nullptr) *error = "unknown mode '" + mode + "'";
        return false;
      }
    } else if (directive == "seed") {
      if (!(ls >> trace.seed)) {
        if (error != nullptr) *error = "bad seed line";
        return false;
      }
    } else if (directive == "budget") {
      if (!(ls >> trace.budget)) {
        if (error != nullptr) *error = "bad budget line";
        return false;
      }
    } else if (directive == "step") {
      std::string kind_name;
      std::string outcome_token;
      SearchStep step;
      if (!(ls >> kind_name >> step.op_index >> outcome_token) ||
          !KindFromName(kind_name, &step.kind) ||
          !OutcomeFromToken(outcome_token, &step.outcome)) {
        if (error != nullptr) *error = "bad step line: " + line;
        return false;
      }
      trace.steps.push_back(std::move(step));
    } else if (directive == "source") {
      std::ostringstream src;
      while (std::getline(is, line)) src << line << '\n';
      trace.source = src.str();
      have_source = true;
    } else {
      if (error != nullptr) *error = "unknown directive '" + directive + "'";
      return false;
    }
  }
  if (!have_source || trace.source.empty()) {
    if (error != nullptr) *error = "missing source section";
    return false;
  }
  *out = std::move(trace);
  return true;
}

TraceReplayResult ReplaySearchTrace(const SearchTrace& trace,
                                    const SessionOptions& options) {
  TraceReplayResult result;
  Program original = Parse(trace.source);
  Session session(original.Clone(), options);
  std::vector<SearchStep> executed;
  executed.reserve(trace.steps.size());

  for (const SearchStep& step : trace.steps) {
    if (step.outcome == SearchStep::Outcome::kApplyFailed) continue;
    std::vector<Opportunity> ops = session.FindOpportunities(step.kind);
    if (step.op_index < 0 ||
        static_cast<std::size_t>(step.op_index) >= ops.size()) {
      // Shrinking removed a predecessor this step depended on; skip.
      ++result.skipped;
      continue;
    }
    SearchStep done = step;
    done.cascades.clear();
    OrderStamp stamp = kNoStamp;
    try {
      stamp = session.Apply(ops[static_cast<std::size_t>(step.op_index)]);
    } catch (const ProgramError&) {
      ++result.skipped;
      continue;
    }
    done.stamp = stamp;
    if (step.outcome == SearchStep::Outcome::kRejected) {
      std::vector<OrderStamp> undone;
      try {
        session.UndoSet({stamp}, &undone);
      } catch (const ProgramError&) {
        done.outcome = SearchStep::Outcome::kRejectFailed;
        ++result.applied;
        executed.push_back(std::move(done));
        continue;
      }
      for (const OrderStamp u : undone) {
        if (u != stamp) done.cascades.push_back(u);
      }
      ++result.rejected;
    } else {
      // kAccepted / kRejectFailed both left the record live.
      done.outcome = SearchStep::Outcome::kAccepted;
      ++result.applied;
    }
    executed.push_back(std::move(done));
  }

  result.failure =
      VerifyAcceptedPrefix(original, executed, session, options);
  result.ok = result.failure.empty();
  result.final_source = session.Source();
  return result;
}

SearchTrace ShrinkSearchTrace(const SearchTrace& trace,
                              const SessionOptions& options) {
  // Greedy delta-debugging on the step list: drop a step, keep the drop if
  // the replay still fails, repeat until a fixed point.
  SearchTrace best = trace;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < best.steps.size(); ++i) {
      SearchTrace candidate = best;
      candidate.steps.erase(candidate.steps.begin() +
                            static_cast<std::ptrdiff_t>(i));
      if (!ReplaySearchTrace(candidate, options).ok) {
        best = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return best;
}

}  // namespace pivot
