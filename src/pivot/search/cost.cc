#include "pivot/search/cost.h"

#include <unordered_set>

namespace pivot {

CostSnapshot ScoreProgram(AnalysisCache& analyses,
                          const CostWeights& weights) {
  CostSnapshot snapshot;

  // Which loops carry a dependence? A dependence is carried by the loop at
  // its first non-'=' direction; '*' means the tests could not decide, so
  // it may be carried there *or* at any deeper common loop — mark them
  // all. All-'=' (loop-independent) dependences order statements within
  // one iteration and do not serialize any loop.
  const std::vector<Dependence>& deps = analyses.deps();
  std::unordered_set<StmtId> carrying;
  for (const Dependence& dep : deps) {
    for (std::size_t i = 0; i < dep.dirs.size(); ++i) {
      const DepDir dir = dep.dirs[i];
      if (dir == DepDir::kEq) continue;
      if (dir == DepDir::kStar) {
        for (std::size_t j = i; j < dep.loops.size(); ++j) {
          carrying.insert(dep.loops[j]->id);
        }
      } else {
        carrying.insert(dep.loops[i]->id);
      }
      break;
    }
  }

  const LoopTree& loops = analyses.loops();
  snapshot.total_loops = static_cast<int>(loops.loops().size());
  for (const LoopInfo& info : loops.loops()) {
    if (carrying.count(info.loop->id) == 0) ++snapshot.parallel_loops;
  }

  analyses.program().ForEachAttached(
      [&snapshot](const Stmt&) { ++snapshot.statements; });
  snapshot.dependences = static_cast<int>(deps.size());

  snapshot.score = weights.parallel_loop * snapshot.parallel_loops -
                   weights.statement * snapshot.statements -
                   weights.dependence * snapshot.dependences;
  return snapshot;
}

}  // namespace pivot
