// Search-driven auto-parallelization: undo as the backtracking path.
//
// The Searcher walks transformation schedules over a live Session in the
// STOKE style: each iteration proposes one applicable (transformation,
// opportunity) pair, applies it, scores the result with the cost model,
// and either keeps it or *rejects* it — and a rejection is exactly one
// Session::UndoSet of the just-applied record, planned through the
// region-indexed undo engine. This is the paper's claim turned into a
// workload: independent-order undo makes rejected work cheap, so a search
// that rejects most proposals spends its time searching, not unwinding.
//
// Two drivers share the proposal loop:
//   * greedy  — accept iff the score strictly improves;
//   * anneal  — accept improvements always, regressions with probability
//               exp(delta / T) under a geometrically cooling temperature
//               (classic simulated annealing / MCMC-flavoured search).
// Both draw every random decision from one seeded Rng, so a (seed, budget,
// mode) triple reproduces the identical trace and final program.
//
// Opportunities are referenced *by index into the deterministic
// FindOpportunities order* (the fuzzcase convention), never by statement
// id — that is what lets a trace replay in a fresh session, and what the
// accepted-prefix oracle leans on: if every reject truly restored the
// pre-proposal program, then replaying only the surviving accepted steps
// resolves the same indices to the same sites and converges on the same
// program. Any undo inexactness surfaces as an index that resolves
// differently, a failed pre-condition, or a diverging final program.
#ifndef PIVOT_SEARCH_SEARCHER_H_
#define PIVOT_SEARCH_SEARCHER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pivot/core/session.h"
#include "pivot/search/cost.h"
#include "pivot/support/rng.h"

namespace pivot {

enum class SearchMode { kGreedy, kAnneal };

const char* SearchModeName(SearchMode mode);
bool ParseSearchMode(const std::string& text, SearchMode* out);

struct SearchOptions {
  SearchMode mode = SearchMode::kAnneal;
  int budget = 1000;  // proposals to evaluate
  std::uint64_t seed = 1;
  CostWeights weights;
  // Annealing schedule: T cools geometrically from initial to final over
  // the budget. Ignored by greedy.
  double initial_temperature = 8.0;
  double final_temperature = 0.05;
};

// One proposal's fate. `stamp` is the applied record's stamp in the
// *searched* session (meaningless across processes; replay re-derives it).
struct SearchStep {
  enum class Outcome {
    kAccepted,      // applied, kept
    kRejected,      // applied, undone via UndoSet
    kApplyFailed,   // Apply threw (injected fault / stale pre-condition);
                    // the transaction rolled back, nothing to undo
    kRejectFailed,  // the reject's UndoSet threw; its rollback restored
                    // the applied record, which therefore stays live
  };
  TransformKind kind = TransformKind::kDce;
  int op_index = 0;  // into FindOpportunities(kind) at proposal time
  Outcome outcome = Outcome::kAccepted;
  OrderStamp stamp = kNoStamp;
  double score_after = 0.0;  // post-apply score (kAccepted/kRejected)
  // Stamps of *other* records the reject's undo cascaded away (previously
  // accepted work invalidated by unwinding this proposal). Empty for the
  // overwhelmingly common exact single-record reject.
  std::vector<OrderStamp> cascades;
};

struct SearchStats {
  std::uint64_t proposals = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t apply_failures = 0;
  std::uint64_t reject_failures = 0;
  std::uint64_t cascaded_records = 0;  // accepted records lost to rejects
  bool exhausted = false;  // stopped early: no opportunity of any kind
  // Wall-clock spent inside Apply vs inside the reject-path UndoSet — the
  // apply:undo ratio the bench gates on.
  std::uint64_t apply_ns = 0;
  std::uint64_t undo_ns = 0;
  UndoStats undo;  // summed over all rejects
};

struct SearchResult {
  std::vector<SearchStep> steps;
  SearchStats stats;
  CostSnapshot initial_cost;
  CostSnapshot final_cost;
};

class Searcher {
 public:
  Searcher(Session& session, SearchOptions options);

  // Runs the proposal loop for options.budget proposals (or until no
  // transformation has any opportunity left). The session is left at the
  // best-effort final state; every rejected proposal has been undone.
  SearchResult Run();

 private:
  struct Proposal {
    TransformKind kind;
    int op_index;
    Opportunity op;
  };
  bool Propose(Proposal* out);
  bool AcceptRegression(double delta, int step);

  Session& session_;
  SearchOptions options_;
  Rng rng_;
};

// --- accepted-prefix oracle -----------------------------------------------
//
// Replays only the steps that survived (kAccepted / kRejectFailed, minus
// records later cascaded away) into a fresh session built from `original`,
// resolving each by (kind, op_index) and mirroring reject-cascades with an
// explicit UndoSet of the mapped stamps. Returns "" when the searched
// session is structurally identical AND semantically equivalent
// (SemanticsOracle over `inputs`, DefaultOracleInputs when empty) to that
// replay; otherwise a description of the first deviation.
std::string VerifyAcceptedPrefix(
    const Program& original, const std::vector<SearchStep>& steps,
    Session& searched, const SessionOptions& session_options = {},
    const std::vector<std::vector<double>>& inputs = {});

// --- traces ---------------------------------------------------------------
//
// A serialized search: enough to re-execute the recorded decisions in a
// fresh process (shrinking a failure) or to re-run the searcher
// deterministically. Stamps and cascades are not serialized — a replay
// re-derives them.
//
//   # pivot_search trace
//   mode anneal
//   seed 42
//   budget 500
//   step CSE 3 accept
//   step DCE 0 reject
//   step ICM 1 apply-fail
//   step FUS 0 reject-fail
//   source
//   <program text to end of file>
struct SearchTrace {
  SearchMode mode = SearchMode::kAnneal;
  std::uint64_t seed = 1;
  int budget = 0;
  std::string source;
  std::vector<SearchStep> steps;
};

std::string SerializeSearchTrace(const SearchTrace& trace);
bool DeserializeSearchTrace(const std::string& text, SearchTrace* out,
                            std::string* error);

struct TraceReplayResult {
  bool ok = true;
  std::string failure;  // first oracle deviation (empty when ok)
  int applied = 0;
  int rejected = 0;
  int skipped = 0;  // steps whose opportunity no longer resolves
  std::string final_source;
};

// Re-executes the trace's recorded decisions (accept = keep, reject =
// apply + UndoSet) on a fresh session, then runs the accepted-prefix
// oracle against the result. Steps that no longer resolve (after
// shrinking removed their predecessors) are skipped, so a shrunk trace
// stays replayable.
TraceReplayResult ReplaySearchTrace(const SearchTrace& trace,
                                    const SessionOptions& options = {});

// Greedily drops steps while `still_failing` keeps returning true for the
// shrunk trace's replay, and returns the smaller trace. Used by the CLI's
// `shrink` command on a trace whose replay fails the oracle.
SearchTrace ShrinkSearchTrace(const SearchTrace& trace,
                              const SessionOptions& options = {});

}  // namespace pivot

#endif  // PIVOT_SEARCH_SEARCHER_H_
