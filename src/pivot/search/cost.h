// Cost model for the transformation-schedule search.
//
// A schedule is scored on the program state it produced, using only facts
// the analysis cache already derives: how many loops carry no dependence
// (parallelizable), how many statements remain, and how many dependences
// the program has overall. The score is a single double — higher is
// better — so both drivers (greedy hill-climb, simulated annealing)
// compare states with one subtraction.
#ifndef PIVOT_SEARCH_COST_H_
#define PIVOT_SEARCH_COST_H_

#include "pivot/analysis/analyses.h"

namespace pivot {

struct CostWeights {
  // A loop that carries no dependence is the searcher's jackpot: it can
  // run as a parallel (DOALL) loop, which is what the transformation
  // catalog is ultimately for.
  double parallel_loop = 100.0;
  // Dead/duplicate statements eliminated (DCE, CSE after propagation).
  double statement = 1.0;
  // Fewer dependences = more freedom for later transformations.
  double dependence = 0.25;
};

struct CostSnapshot {
  int total_loops = 0;
  int parallel_loops = 0;  // loops carrying no dependence
  int statements = 0;      // attached statements (all kinds)
  int dependences = 0;
  double score = 0.0;      // higher is better
};

// Scores the cache's current program. Forces the loop tree and dependence
// families; a dependence is *carried* by the loop at its first non-'='
// direction position ('*' is conservatively treated as carried there and
// at every deeper common loop), and loop-independent dependences carry
// nowhere.
CostSnapshot ScoreProgram(AnalysisCache& analyses,
                          const CostWeights& weights = {});

}  // namespace pivot

#endif  // PIVOT_SEARCH_COST_H_
