#include "pivot/server/group_commit.h"

#include <utility>

#include "pivot/persist/token.h"
#include "pivot/server/protocol.h"
#include "pivot/support/fault_injector.h"

namespace pivot {

std::string EncodeGroupFrame(const std::string& session, FrameType type,
                             const std::string& body) {
  persist_internal::TokenWriter w;
  w.Tok("g");
  w.Str(session);
  w.Int(static_cast<int>(type));
  w.Str(body);
  return w.Take();
}

GroupFrame DecodeGroupFrame(const std::string& body) {
  persist_internal::TokenReader r(body);
  GroupFrame frame;
  r.Expect("g");
  frame.session = r.Str();
  const long long type = r.Int();
  if (type < static_cast<int>(FrameType::kGenesis) ||
      type > static_cast<int>(FrameType::kSnapshot)) {
    persist_internal::Malformed("bad frame type in group envelope");
  }
  frame.type = static_cast<FrameType>(type);
  frame.body = r.Str();
  if (!r.AtEnd()) {
    persist_internal::Malformed("trailing data in group envelope");
  }
  return frame;
}

GroupCommitLog::GroupCommitLog(const std::string& path, bool create,
                               GroupCommitOptions options,
                               std::function<void(Failure)> on_failure)
    : options_(options),
      on_failure_(std::move(on_failure)),
      lock_(FileLock::Acquire(path)),
      writer_(create ? WalWriter::Create(path) : WalWriter::Append(path)),
      worker_([this] { WorkerLoop(); }) {}

GroupCommitLog::~GroupCommitLog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  worker_.join();
}

void GroupCommitLog::Commit(const std::string& session, FrameType type,
                            const std::string& body) {
  auto ticket = std::make_shared<Ticket>();
  ticket->session = session;
  ticket->type = type;
  ticket->body = body;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (failure_ != Failure::kNone) std::rethrow_exception(failure_error_);
    if (draining_ || stop_) {
      // Not a fault: the server is draining. Retryable, so a commit racing
      // SIGTERM is retried against the restarted server instead of being
      // reported as a (non-retryable) degradation.
      throw ServerShuttingDownError("group-commit log is draining");
    }
    if (queue_.size() >= static_cast<std::size_t>(options_.max_queue)) {
      ++stats_.rejected_full;
      throw ServerOverloadedError(
          "group-commit queue is full (" +
          std::to_string(options_.max_queue) + " frames pending)");
    }
    queue_.push_back(ticket);
  }
  queue_cv_.notify_all();

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return ticket->done; });
  if (ticket->error) std::rethrow_exception(ticket->error);
}

void GroupCommitLog::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  queue_cv_.notify_all();
  // The worker keeps writing batches until the queue is empty; committers
  // already queued still get their acks.
  done_cv_.wait(lock, [&] { return queue_.empty(); });
  stop_ = true;
  queue_cv_.notify_all();
}

GroupCommitLog::Failure GroupCommitLog::failure() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failure_;
}

GroupCommitStats GroupCommitLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void GroupCommitLog::FailAll(Failure failure, std::exception_ptr error,
                             std::deque<std::shared_ptr<Ticket>>& batch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (failure_ == Failure::kNone) {
      failure_ = failure;
      failure_error_ = error;
    }
    // Tickets already marked done were durably written and acknowledged;
    // only the still-pending ones (rest of the batch + everything queued)
    // carry the failure.
    for (auto& t : batch) {
      if (t->done) continue;
      t->error = error;
      t->done = true;
    }
    for (auto& t : queue_) {
      t->error = error;
      t->done = true;
    }
    queue_.clear();
  }
  done_cv_.notify_all();
  if (on_failure_) on_failure_(failure);
}

void GroupCommitLog::WorkerLoop() {
  for (;;) {
    std::deque<std::shared_ptr<Ticket>> batch;
    std::exception_ptr broken;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      batch.swap(queue_);
      if (failure_ != Failure::kNone) broken = failure_error_;
    }

    if (broken) {
      // The log already failed: fail this batch with the stored error
      // instead of appending behind a broken tail.
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto& t : batch) {
          t->error = broken;
          t->done = true;
        }
      }
      done_cv_.notify_all();
      continue;
    }

    const std::uint64_t pre_batch = writer_.offset();
    try {
      PIVOT_FAULT_POINT("server.batch.pre");
      for (const auto& t : batch) {
        writer_.AppendFrame(FrameType::kGroup,
                            EncodeGroupFrame(t->session, t->type, t->body),
                            /*fsync=*/false, "server.gwal.frame");
        if (options_.fsync && !options_.group_fsync) {
          // Per-commit baseline: pay one fsync per frame.
          writer_.Sync();
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.fsyncs;
        }
      }
      if (options_.fsync && options_.group_fsync) {
        // THE group commit: one fsync covers every frame in the batch.
        // A crash at sync.post is "durable but nobody acknowledged yet".
        writer_.Sync("server.gwal.sync.post");
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.fsyncs;
      }

      {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto& t : batch) {
          PIVOT_FAULT_POINT("server.ack.pre");
          t->done = true;
          ++stats_.frames;
        }
        ++stats_.batches;
        if (batch.size() > stats_.max_batch) stats_.max_batch = batch.size();
      }
      done_cv_.notify_all();
    } catch (const FaultInjectedError&) {
      // The crash harness: leave the file exactly as the "crash" left it
      // (recovery's scan owns the torn tail) and stop serving.
      FailAll(Failure::kCrashed, std::current_exception(), batch);
    } catch (const ProgramError&) {
      // Permanent write fault (the WAL layer already absorbed transients).
      // Rolling the half-written batch off the log keeps rolled-back
      // operations from resurfacing at the next recovery; if even the
      // truncate fails the tail is torn and recovery will cut it.
      try {
        writer_.TruncateTo(pre_batch);
      } catch (...) {
      }
      auto error = std::make_exception_ptr(ServerDegradedError(
          "group-commit log write fault; commits are refused"));
      FailAll(Failure::kDegraded, error, batch);
    }
  }
}

}  // namespace pivot
