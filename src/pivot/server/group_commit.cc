#include "pivot/server/group_commit.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "pivot/persist/token.h"
#include "pivot/server/protocol.h"
#include "pivot/support/fault_injector.h"

namespace pivot {

std::string EncodeGroupFrame(const std::string& session, FrameType type,
                             const std::string& body) {
  persist_internal::TokenWriter w;
  w.Tok("g");
  w.Str(session);
  w.Int(static_cast<int>(type));
  w.Str(body);
  return w.Take();
}

std::string EncodeGroupMark(const std::string& session,
                            std::uint64_t dropped) {
  persist_internal::TokenWriter w;
  w.Tok("m");
  w.Str(session);
  w.U64(dropped);
  return w.Take();
}

GroupFrame DecodeGroupFrame(const std::string& body) {
  persist_internal::TokenReader r(body);
  GroupFrame frame;
  const std::string tag = r.Next();
  if (tag == "m") {
    frame.mark = true;
    frame.session = r.Str();
    frame.dropped = r.U64();
    if (!r.AtEnd()) {
      persist_internal::Malformed("trailing data in retention mark");
    }
    return frame;
  }
  if (tag != "g") {
    persist_internal::Malformed("bad group envelope tag '" + tag + "'");
  }
  frame.session = r.Str();
  const long long type = r.Int();
  if (type < static_cast<int>(FrameType::kGenesis) ||
      type > static_cast<int>(FrameType::kSnapshot)) {
    persist_internal::Malformed("bad frame type in group envelope");
  }
  frame.type = static_cast<FrameType>(type);
  frame.body = r.Str();
  if (!r.AtEnd()) {
    persist_internal::Malformed("trailing data in group envelope");
  }
  return frame;
}

GroupCommitLog::GroupCommitLog(const std::string& path, bool create,
                               GroupCommitOptions options,
                               std::function<void(Failure)> on_failure)
    : path_(path),
      options_(options),
      on_failure_(std::move(on_failure)),
      lock_(FileLock::Acquire(path)),
      writer_(create ? WalWriter::Create(path) : WalWriter::Append(path)),
      // Initialized before worker_ starts — the worker owns writer_ (and
      // log_bytes_ updates) from then on.
      log_bytes_(writer_.offset()),
      worker_([this] { WorkerLoop(); }) {
  // A leftover rewrite tmp from a crash mid-compaction is garbage by
  // definition (the rename is the commit point).
  std::remove((path + ".compact").c_str());
}

GroupCommitLog::~GroupCommitLog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  worker_.join();
}

void GroupCommitLog::Commit(const std::string& session, FrameType type,
                            const std::string& body) {
  auto ticket = std::make_shared<Ticket>();
  ticket->session = session;
  ticket->type = type;
  ticket->body = body;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (failure_ != Failure::kNone) std::rethrow_exception(failure_error_);
    if (draining_ || stop_) {
      // Not a fault: the server is draining. Retryable, so a commit racing
      // SIGTERM is retried against the restarted server instead of being
      // reported as a (non-retryable) degradation.
      throw ServerShuttingDownError("group-commit log is draining");
    }
    if (queue_.size() >= static_cast<std::size_t>(options_.max_queue)) {
      ++stats_.rejected_full;
      throw ServerOverloadedError(
          "group-commit queue is full (" +
          std::to_string(options_.max_queue) + " frames pending)");
    }
    queue_.push_back(ticket);
  }
  queue_cv_.notify_all();

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return ticket->done; });
  if (ticket->error) std::rethrow_exception(ticket->error);
}

void GroupCommitLog::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  queue_cv_.notify_all();
  // The worker keeps writing batches until the queue is empty; committers
  // already queued still get their acks. An empty queue alone is not
  // "drained": the worker may hold a swapped-out batch whose group fsync
  // has not returned yet, and reporting drained before that fsync would
  // let the process exit with acknowledged-to-be-written frames still in
  // flight. Wait for the in-flight batch (and any retention rewrite) too.
  done_cv_.wait(lock, [&] {
    return queue_.empty() && !inflight_ && !compact_active_;
  });
  stop_ = true;
  queue_cv_.notify_all();
}

void GroupCommitLog::Compact(std::map<std::string, std::uint64_t> watermarks) {
  std::unique_lock<std::mutex> lock(mu_);
  // One pass at a time; a second caller queues behind the first.
  done_cv_.wait(lock, [&] {
    return (!compact_request_.has_value() && !compact_active_) || stop_;
  });
  if (failure_ != Failure::kNone) std::rethrow_exception(failure_error_);
  if (draining_ || stop_) {
    throw ServerShuttingDownError("group-commit log is draining");
  }
  compact_request_ = std::move(watermarks);
  compact_done_ = false;
  compact_error_ = nullptr;
  queue_cv_.notify_all();
  done_cv_.wait(lock, [&] { return compact_done_; });
  if (compact_error_) std::rethrow_exception(compact_error_);
}

GroupCommitLog::Failure GroupCommitLog::failure() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failure_;
}

GroupCommitStats GroupCommitLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void GroupCommitLog::FailAll(Failure failure, std::exception_ptr error,
                             std::deque<std::shared_ptr<Ticket>>& batch) {
  // Report the failure upward BEFORE any waiter can observe it: a committer
  // woken below returns kDegraded to its client, and by then the server's
  // mode must already say so — callers legitimately read mode() right after
  // a degraded response. The callback is idempotent (mode CAS), so racing
  // FailAll calls are harmless.
  if (on_failure_) on_failure_(failure);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (failure_ == Failure::kNone) {
      failure_ = failure;
      failure_error_ = error;
    }
    // Tickets already marked done were durably written and acknowledged;
    // only the still-pending ones (rest of the batch + everything queued)
    // carry the failure.
    for (auto& t : batch) {
      if (t->done) continue;
      t->error = error;
      t->done = true;
    }
    for (auto& t : queue_) {
      t->error = error;
      t->done = true;
    }
    queue_.clear();
    inflight_ = false;
    // A retention pass queued behind the failed batch gets the same error.
    if (compact_request_.has_value()) {
      compact_request_.reset();
      compact_error_ = error;
      compact_done_ = true;
    }
  }
  done_cv_.notify_all();
}

void GroupCommitLog::WorkerLoop() {
  for (;;) {
    std::deque<std::shared_ptr<Ticket>> batch;
    std::exception_ptr broken;
    std::optional<std::map<std::string, std::uint64_t>> compact;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] {
        return stop_ || !queue_.empty() || compact_request_.has_value();
      });
      if (compact_request_.has_value() && !stop_) {
        // Retention runs between batches, when the file is quiescent —
        // which it is whatever the queue holds, since this worker is the
        // only appender. Taking the request ahead of the next batch keeps
        // a saturated commit stream from starving retention (the queue
        // just waits out one rewrite).
        compact = std::move(compact_request_);
        compact_request_.reset();
        compact_active_ = true;
        if (failure_ != Failure::kNone) broken = failure_error_;
      } else if (queue_.empty()) {
        if (stop_) {
          // A retention request that raced shutdown must not hang its
          // caller.
          if (compact_request_.has_value()) {
            compact_request_.reset();
            compact_error_ = std::make_exception_ptr(
                ServerShuttingDownError("group-commit log is draining"));
            compact_done_ = true;
            lock.unlock();
            done_cv_.notify_all();
          }
          return;
        }
        continue;
      } else {
        batch.swap(queue_);
        inflight_ = true;
        if (failure_ != Failure::kNone) broken = failure_error_;
      }
    }

    if (compact.has_value()) {
      std::exception_ptr err =
          broken ? broken : DoCompact(*compact);
      {
        std::lock_guard<std::mutex> lock(mu_);
        compact_active_ = false;
        compact_error_ = err;
        compact_done_ = true;
      }
      done_cv_.notify_all();
      continue;
    }

    if (broken) {
      // The log already failed: fail this batch with the stored error
      // instead of appending behind a broken tail.
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto& t : batch) {
          t->error = broken;
          t->done = true;
        }
        inflight_ = false;
      }
      done_cv_.notify_all();
      continue;
    }

    const std::uint64_t pre_batch = writer_.offset();
    try {
      PIVOT_FAULT_POINT("server.batch.pre");
      for (const auto& t : batch) {
        writer_.AppendFrame(FrameType::kGroup,
                            EncodeGroupFrame(t->session, t->type, t->body),
                            /*fsync=*/false, "server.gwal.frame");
        if (options_.fsync && !options_.group_fsync) {
          // Per-commit baseline: pay one fsync per frame.
          writer_.Sync();
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.fsyncs;
        }
      }
      if (options_.fsync && options_.group_fsync) {
        // THE group commit: one fsync covers every frame in the batch.
        // A crash at sync.post is "durable but nobody acknowledged yet".
        writer_.Sync("server.gwal.sync.post");
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.fsyncs;
      }

      log_bytes_.store(writer_.offset(), std::memory_order_release);
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto& t : batch) {
          PIVOT_FAULT_POINT("server.ack.pre");
          t->done = true;
          ++stats_.frames;
        }
        ++stats_.batches;
        if (batch.size() > stats_.max_batch) stats_.max_batch = batch.size();
        inflight_ = false;
      }
      done_cv_.notify_all();
    } catch (const FaultInjectedError&) {
      // The crash harness: leave the file exactly as the "crash" left it
      // (recovery's scan owns the torn tail) and stop serving.
      FailAll(Failure::kCrashed, std::current_exception(), batch);
    } catch (const ProgramError&) {
      // Permanent write fault (the WAL layer already absorbed transients).
      // Rolling the half-written batch off the log keeps rolled-back
      // operations from resurfacing at the next recovery; if even the
      // truncate fails the tail is torn and recovery will cut it.
      try {
        writer_.TruncateTo(pre_batch);
      } catch (...) {
      }
      log_bytes_.store(writer_.offset(), std::memory_order_release);
      auto error = std::make_exception_ptr(ServerDegradedError(
          "group-commit log write fault; commits are refused"));
      FailAll(Failure::kDegraded, error, batch);
    }
  }
}

std::exception_ptr GroupCommitLog::DoCompact(
    const std::map<std::string, std::uint64_t>& watermarks) {
  const std::string tmp = path_ + ".compact";
  bool renamed = false;
  try {
    PIVOT_FAULT_POINT("server.gwal.compact.pre");
    const WalScanResult scan = ScanWal(path_);
    struct Entry {
      const WalFrame* frame;
      GroupFrame decoded;
    };
    std::vector<Entry> entries;
    entries.reserve(scan.frames.size());
    // Cumulative drops already recorded by earlier passes (later marks
    // supersede earlier ones for the same session).
    std::map<std::string, std::uint64_t> base_dropped;
    for (const WalFrame& frame : scan.frames) {
      if (frame.type != FrameType::kGroup) {
        throw ProgramError("group log holds a foreign frame; not compacting");
      }
      Entry e{&frame, DecodeGroupFrame(frame.body)};
      if (e.decoded.mark) {
        base_dropped[e.decoded.session] = e.decoded.dropped;
      }
      entries.push_back(std::move(e));
    }

    // How many leading txn envelopes each session sheds in THIS pass: the
    // caller's watermark is cumulative, so subtract what earlier passes
    // already reclaimed, and never drop more than the file actually holds
    // (a watermark can run ahead of the log when a session-WAL frame's
    // group envelope was truncated as a torn tail).
    std::map<std::string, std::uint64_t> available;
    for (const Entry& e : entries) {
      if (!e.decoded.mark && e.decoded.type == FrameType::kTxn) {
        ++available[e.decoded.session];
      }
    }
    std::map<std::string, std::uint64_t> drop_now;  // per session, this pass
    std::map<std::string, std::uint64_t> cumulative = base_dropped;
    for (const auto& [session, watermark] : watermarks) {
      const std::uint64_t base = base_dropped.count(session)
                                     ? base_dropped.at(session)
                                     : 0;
      if (watermark <= base) continue;
      std::uint64_t n = watermark - base;
      const auto avail = available.find(session);
      const std::uint64_t have = avail == available.end() ? 0 : avail->second;
      if (n > have) n = have;
      if (n == 0) continue;
      drop_now[session] = n;
      cumulative[session] = base + n;
    }
    if (drop_now.empty()) return nullptr;  // nothing to reclaim

    WalWriter out = WalWriter::Create(tmp);
    // Marks first: one consolidated cumulative mark per session.
    for (const auto& [session, dropped] : cumulative) {
      out.AppendFrame(FrameType::kGroup, EncodeGroupMark(session, dropped),
                      /*fsync=*/false, "server.gwal.compact.mark");
    }
    std::map<std::string, std::uint64_t> skipped;
    for (const Entry& e : entries) {
      if (e.decoded.mark) continue;  // consolidated above
      if (e.decoded.type == FrameType::kTxn) {
        const auto drop = drop_now.find(e.decoded.session);
        if (drop != drop_now.end() &&
            skipped[e.decoded.session] < drop->second) {
          ++skipped[e.decoded.session];
          continue;
        }
      }
      out.AppendFrame(FrameType::kGroup, e.frame->body, /*fsync=*/false,
                      "server.gwal.compact.frame");
    }
    out.Sync("server.gwal.compact.tmp.synced");
    PIVOT_FAULT_POINT("server.gwal.compact.rename.pre");
    if (::rename(tmp.c_str(), path_.c_str()) != 0) {
      throw ProgramError("group log: compaction rename failed: " +
                         std::string(std::strerror(errno)));
    }
    renamed = true;
    PIVOT_FAULT_POINT("server.gwal.compact.rename.post");
    // The old fd references the replaced (unlinked) inode; reopen.
    writer_ = WalWriter::Append(path_);
    log_bytes_.store(writer_.offset(), std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.compactions;
    }
    return nullptr;
  } catch (const FaultInjectedError&) {
    // The crash harness: stop serving, leave every file exactly as the
    // "crash" left it.
    auto error = std::current_exception();
    std::deque<std::shared_ptr<Ticket>> none;
    FailAll(Failure::kCrashed, error, none);
    return error;
  } catch (const ProgramError&) {
    if (!renamed) {
      // The live log was never touched: report the failure to the
      // requester and keep serving.
      std::remove(tmp.c_str());
      return std::current_exception();
    }
    // Renamed but could not reopen the writer: the file on disk is a
    // complete, valid log, but this process can no longer append.
    auto error = std::make_exception_ptr(ServerDegradedError(
        "group-commit log failed to reopen after compaction"));
    std::deque<std::shared_ptr<Ticket>> none;
    FailAll(Failure::kDegraded, error, none);
    return error;
  }
}

}  // namespace pivot
