// Socket front-ends for PivotServer: unix-domain and TCP listeners
// sharing the framed protocol (server/protocol.h), one thread per
// connection, with per-connection read deadlines so an idle or slowloris
// peer cannot pin a thread forever.
//
// The listener owns the accept loop and the connection threads; the
// PivotServer it fronts outlives it. Shutdown() is safe to call from a
// signal handler (it only stores an atomic flag and shutdown(2)s the
// listening sockets); Run() then falls out of its poll, disconnects the
// live connections and joins their threads before returning.
#ifndef PIVOT_SERVER_LISTENER_H_
#define PIVOT_SERVER_LISTENER_H_

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "pivot/server/server.h"

namespace pivot {

struct ListenerOptions {
  // Unix-domain socket path; empty = no unix listener. An existing socket
  // file is unlinked before binding (stale from a previous run).
  std::string unix_path;
  // TCP host to bind; empty = no TCP listener. Numeric or resolvable;
  // port 0 picks an ephemeral port (read it back via tcp_port()).
  std::string tcp_host;
  int tcp_port = 0;
  int backlog = 64;
  // Read deadlines applied to every accepted connection (see
  // ConnectionLimits); zeros = unbounded, the classic unix-socket trust
  // model. TCP deployments should set both.
  ConnectionLimits limits;
};

class ServerListener {
 public:
  // Binds every configured listener; throws ProgramError when a socket
  // cannot be bound. At least one of unix_path/tcp_host must be set.
  ServerListener(PivotServer& server, ListenerOptions options);
  ~ServerListener();
  ServerListener(const ServerListener&) = delete;
  ServerListener& operator=(const ServerListener&) = delete;

  // Accept loop: serves connections until Shutdown() is called or the
  // server reaches kStopped (a client-initiated drain). On exit every
  // live connection is shut down and every connection thread joined.
  void Run();

  // Ends Run() from another thread or a signal handler: flags the stop
  // and shutdown(2)s the listening sockets to break the poll/accept.
  // Idempotent.
  void Shutdown();

  // The TCP port actually bound (resolves port 0), 0 when no TCP listener.
  int tcp_port() const { return tcp_port_; }

 private:
  void AcceptOne(int listen_fd);

  PivotServer& server_;
  const ListenerOptions options_;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = 0;
  std::atomic<bool> stop_{false};

  std::mutex fds_mu_;
  std::set<int> live_fds_;  // guarded by fds_mu_
  std::vector<std::thread> connections_;  // only touched by Run()
};

// Client-side dials, shared by the tools (pivot_client, pivot_swarm).
// Return the connected fd or -1 with errno describing the failure.
int DialUnix(const std::string& path);
int DialTcp(const std::string& host, int port);
// Parses "HOST:PORT" (the --tcp flag syntax; the last ':' splits, so
// numeric IPv6 works as e.g. ::1:9000). Returns false on malformed input.
bool ParseHostPort(const std::string& spec, std::string* host, int* port);

}  // namespace pivot

#endif  // PIVOT_SERVER_LISTENER_H_
