#include "pivot/server/protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

#include <cerrno>
#include <cstring>

#include "pivot/persist/token.h"
#include "pivot/support/crc32c.h"

namespace pivot {
namespace {

using persist_internal::Malformed;
using persist_internal::TokenReader;
using persist_internal::TokenWriter;

constexpr ServerOp kAllOps[] = {
    ServerOp::kPing,    ServerOp::kOpen,     ServerOp::kRecover,
    ServerOp::kClose,   ServerOp::kApply,    ServerOp::kTxn,
    ServerOp::kUndo,    ServerOp::kUndoSet,  ServerOp::kUndoLast,
    ServerOp::kCanUndo, ServerOp::kSource,   ServerOp::kHistory,
    ServerOp::kStats,   ServerOp::kSleep,    ServerOp::kCompact,
    ServerOp::kShutdown,
};

constexpr StatusCode kAllStatuses[] = {
    StatusCode::kOk,           StatusCode::kBadRequest,
    StatusCode::kNoSuchSession, StatusCode::kSessionExists,
    StatusCode::kPrecondition, StatusCode::kOverloaded,
    StatusCode::kDeadlineExceeded, StatusCode::kDegraded,
    StatusCode::kShuttingDown, StatusCode::kCrashed,
};

void PutU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t GetU32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

[[noreturn]] void IoError(const std::string& what) {
  throw ProgramError("server transport: " + what + ": " +
                     std::strerror(errno));
}

// Reads exactly `len` bytes. Returns false on EOF before the first byte
// when `eof_ok`; EOF mid-buffer always throws (a torn message).
bool ReadAll(int fd, void* buf, std::size_t len, bool eof_ok) {
  char* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, p + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      IoError("read failed");
    }
    if (n == 0) {
      if (got == 0 && eof_ok) return false;
      throw ProgramError("server transport: connection closed mid-message");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void SendAll(int fd, const void* buf, std::size_t len) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    // MSG_NOSIGNAL: a peer that disconnected mid-response must surface as
    // an error on this connection, not SIGPIPE for the whole daemon.
    ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      IoError("write failed");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

// Like ReadAll but with an absolute deadline: each read(2) is preceded by
// a poll(2) bounded by the time remaining. kNoReadDeadline disables the
// bound (plain blocking reads). Throws ReadTimeoutError on expiry.
using ReadClock = std::chrono::steady_clock;
constexpr ReadClock::time_point kNoReadDeadline = ReadClock::time_point::max();

bool ReadAllUntil(int fd, void* buf, std::size_t len, bool eof_ok,
                  ReadClock::time_point deadline) {
  char* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < len) {
    if (deadline != kNoReadDeadline) {
      const auto now = ReadClock::now();
      if (now >= deadline) {
        throw ReadTimeoutError(got == 0 ? "waiting for a request"
                                        : "mid-message");
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - now)
                            .count();
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(left > 0 ? left : 1));
      if (ready < 0) {
        if (errno == EINTR) continue;
        IoError("poll failed");
      }
      if (ready == 0) continue;  // loop re-checks the deadline
      // POLLHUP/POLLERR fall through to read(2), which reports EOF or the
      // error with the usual semantics.
    }
    const ssize_t n = ::read(fd, p + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      IoError("read failed");
    }
    if (n == 0) {
      if (got == 0 && eof_ok) return false;
      throw ProgramError("server transport: connection closed mid-message");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

const char* ServerOpName(ServerOp op) {
  switch (op) {
    case ServerOp::kPing: return "ping";
    case ServerOp::kOpen: return "open";
    case ServerOp::kRecover: return "recover";
    case ServerOp::kClose: return "close";
    case ServerOp::kApply: return "apply";
    case ServerOp::kTxn: return "txn";
    case ServerOp::kUndo: return "undo";
    case ServerOp::kUndoSet: return "undoset";
    case ServerOp::kUndoLast: return "undolast";
    case ServerOp::kCanUndo: return "canundo";
    case ServerOp::kSource: return "source";
    case ServerOp::kHistory: return "history";
    case ServerOp::kStats: return "stats";
    case ServerOp::kSleep: return "sleep";
    case ServerOp::kCompact: return "compact";
    case ServerOp::kShutdown: return "shutdown";
  }
  return "?";
}

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kBadRequest: return "bad-request";
    case StatusCode::kNoSuchSession: return "no-such-session";
    case StatusCode::kSessionExists: return "session-exists";
    case StatusCode::kPrecondition: return "precondition";
    case StatusCode::kOverloaded: return "overloaded";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kDegraded: return "degraded";
    case StatusCode::kShuttingDown: return "shutting-down";
    case StatusCode::kCrashed: return "crashed";
  }
  return "?";
}

bool StatusRetryable(StatusCode code) {
  return code == StatusCode::kOverloaded || code == StatusCode::kShuttingDown;
}

std::string EncodeRequest(const Request& req) {
  TokenWriter w;
  w.Tok("pivotq");
  w.U32(kServerProtocolVersion);
  w.Tok(ServerOpName(req.op));
  w.Str(req.session);
  w.U32(req.deadline_ms);
  w.Str(req.source);
  w.Int(req.kind);
  w.U32(req.op_index);
  w.Int(static_cast<long long>(req.stamps.size()));
  for (OrderStamp s : req.stamps) w.U32(s);
  w.Str(req.txn_body);
  w.U64(req.sleep_ms);
  return w.Take();
}

Request DecodeRequest(const std::string& payload) {
  TokenReader r(payload);
  Request req;
  r.Expect("pivotq");
  const std::uint32_t version = r.U32();
  if (version != kServerProtocolVersion) {
    Malformed("protocol version " + std::to_string(version) +
              " is not supported");
  }
  const std::string op = r.Next();
  bool known = false;
  for (ServerOp candidate : kAllOps) {
    if (op == ServerOpName(candidate)) {
      req.op = candidate;
      known = true;
      break;
    }
  }
  if (!known) Malformed("unknown server op '" + op + "'");
  req.session = r.Str();
  req.deadline_ms = r.U32();
  req.source = r.Str();
  req.kind = static_cast<int>(r.Int());
  req.op_index = r.U32();
  const std::size_t n = r.Count(1u << 20);
  for (std::size_t i = 0; i < n; ++i) req.stamps.push_back(r.U32());
  req.txn_body = r.Str();
  req.sleep_ms = r.U64();
  if (!r.AtEnd()) Malformed("trailing data in request");
  return req;
}

std::string EncodeResponse(const Response& resp) {
  TokenWriter w;
  w.Tok("pivotr");
  w.Tok(StatusCodeName(resp.status));
  w.Int(resp.retryable ? 1 : 0);
  w.Str(resp.error);
  w.U32(resp.stamp);
  w.U64(resp.value);
  w.Str(resp.text);
  return w.Take();
}

Response DecodeResponse(const std::string& payload) {
  TokenReader r(payload);
  Response resp;
  r.Expect("pivotr");
  const std::string status = r.Next();
  bool known = false;
  for (StatusCode candidate : kAllStatuses) {
    if (status == StatusCodeName(candidate)) {
      resp.status = candidate;
      known = true;
      break;
    }
  }
  if (!known) Malformed("unknown status '" + status + "'");
  resp.retryable = r.Int() != 0;
  resp.error = r.Str();
  resp.stamp = r.U32();
  resp.value = r.U64();
  resp.text = r.Str();
  if (!r.AtEnd()) Malformed("trailing data in response");
  return resp;
}

bool ReadMessage(int fd, std::string* payload) {
  unsigned char header[8];
  if (!ReadAll(fd, header, sizeof header, /*eof_ok=*/true)) return false;
  const std::uint32_t len = GetU32(header);
  const std::uint32_t crc = GetU32(header + 4);
  if (len == 0 || len > kMaxMessageBytes) {
    throw ProgramError("server transport: implausible message length " +
                       std::to_string(len));
  }
  payload->resize(len);
  ReadAll(fd, payload->data(), len, /*eof_ok=*/false);
  if (Crc32c(payload->data(), len) != crc) {
    throw ProgramError("server transport: message checksum mismatch");
  }
  return true;
}

bool ReadMessage(int fd, std::string* payload, int idle_ms, int frame_ms) {
  if (idle_ms <= 0 && frame_ms <= 0) return ReadMessage(fd, payload);
  // The idle bound covers the wait for the message's first byte only; a
  // connection with no request in flight is allowed that much silence.
  unsigned char header[8];
  const ReadClock::time_point idle_deadline =
      idle_ms > 0 ? ReadClock::now() + std::chrono::milliseconds(idle_ms)
                  : kNoReadDeadline;
  if (!ReadAllUntil(fd, header, 1, /*eof_ok=*/true, idle_deadline)) {
    return false;
  }
  // First byte in hand: the whole remainder must arrive under the frame
  // bound, however slowly the peer dribbles it.
  const ReadClock::time_point frame_deadline =
      frame_ms > 0 ? ReadClock::now() + std::chrono::milliseconds(frame_ms)
                   : kNoReadDeadline;
  ReadAllUntil(fd, header + 1, sizeof header - 1, /*eof_ok=*/false,
               frame_deadline);
  const std::uint32_t len = GetU32(header);
  const std::uint32_t crc = GetU32(header + 4);
  if (len == 0 || len > kMaxMessageBytes) {
    throw ProgramError("server transport: implausible message length " +
                       std::to_string(len));
  }
  payload->resize(len);
  ReadAllUntil(fd, payload->data(), len, /*eof_ok=*/false, frame_deadline);
  if (Crc32c(payload->data(), len) != crc) {
    throw ProgramError("server transport: message checksum mismatch");
  }
  return true;
}

void WriteMessage(int fd, const std::string& payload) {
  PIVOT_CHECK_MSG(!payload.empty() && payload.size() <= kMaxMessageBytes,
                  "message size out of range");
  std::string header;
  PutU32(header, static_cast<std::uint32_t>(payload.size()));
  PutU32(header, Crc32c(payload));
  SendAll(fd, header.data(), header.size());
  SendAll(fd, payload.data(), payload.size());
}

}  // namespace pivot
