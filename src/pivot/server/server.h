// The hardened multi-session PIVOT server.
//
// PivotServer hosts many concurrent Sessions, each durably journaled to a
// per-session WAL under `data_dir`, with commits funneled through one
// shared group-commit log (see server/group_commit.h) so that N concurrent
// committers pay one fsync, not N. Robustness is the point:
//
//   * admission control — a global in-flight bound and a per-session
//     in-flight bound; past either the request is rejected immediately
//     with kOverloaded (retryable), it is never queued unboundedly;
//   * deadlines — a request may carry deadline_ms; the server checks it at
//     admission, after acquiring the session lock, and just before the
//     group-commit enqueue (the point of no return). Past the deadline the
//     request fails with kDeadlineExceeded instead of burning a slot;
//   * graceful degradation — a permanent write fault (transient retries
//     exhausted; see persist/wal.h) flips the server into kDegraded:
//     reads (source/history/canundo/stats/ping) keep being served, every
//     commit is refused with kDegraded and a typed error. Nothing crashes;
//   * graceful drain — Drain() stops admissions (kShuttingDown,
//     retryable), waits for in-flight requests, flushes and fsyncs the
//     group log. The SIGTERM half of tools/pivot_serve;
//   * session lifecycle — a byte-accounted LRU of resident sessions with
//     a configurable memory budget and idle-age passivation: eviction
//     appends one final durable snapshot and releases the Session and its
//     journal, keeping only a stub with the acked-txn watermark; the next
//     request reactivates the session transparently through
//     Session::Recover (see server/lifecycle.h).
//
// Durability contract (crash-swept in tests/server_crash_test.cc): per-
// session WALs are appended WITHOUT fsync; the single group-log fsync is
// the only durability point, and a commit is acknowledged only after it.
// On startup the server scans the group log and reconciles each session
// WAL against it by content — re-appending acked frames a crash kept out
// of the unsynced per-session file and dropping unacknowledged leftovers
// past the acked prefix — so kill-at-any-point never loses an
// acknowledged commit.
#ifndef PIVOT_SERVER_SERVER_H_
#define PIVOT_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "pivot/core/session.h"
#include "pivot/persist/durable.h"
#include "pivot/server/group_commit.h"
#include "pivot/server/lifecycle.h"
#include "pivot/server/protocol.h"

namespace pivot {

struct ServerOptions {
  // Directory holding `server.gwal` plus one `<session>.wal` per session.
  // Created if missing.
  std::string data_dir;
  // Options for every hosted session (genesis options are per-session and
  // persisted; this is the template for kOpen).
  SessionOptions session;
  // Per-session snapshot policy, as PersistOptions::snapshot_interval.
  int snapshot_interval = 64;
  GroupCommitOptions commit;
  // Admission control: hard bound on requests executing at once across the
  // server / within one session. Past either: kOverloaded, retryable.
  int max_inflight = 256;
  int session_inflight = 8;
  // Admit the test-only ops (kSleep) — tools keep this off.
  bool enable_test_ops = false;
  // Run a gwal retention pass automatically once the group log exceeds
  // this many bytes (fsync each open session's WAL, then drop group
  // frames those WALs already hold durably — see GroupCommitLog::
  // Compact). 0 = only on explicit ServerOp::kCompact.
  std::uint64_t gwal_compact_bytes = 0;
  // Session lifecycle: memory budget, idle passivation, reactivation (see
  // server/lifecycle.h). Default: everything resident forever.
  LifecycleOptions lifecycle;
};

enum class ServerMode {
  kServing,
  kDegraded,  // permanent write fault: reads only, commits refused
  kDraining,  // Drain() in progress: everything refused, retryable
  kStopped,   // drained
  kCrashed,   // crash-harness fault fired: everything refused
};

const char* ServerModeName(ServerMode mode);

struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t commits = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_degraded = 0;
  std::uint64_t transient_absorbed = 0;  // FaultInjector transient count
  std::uint64_t passivations = 0;        // sessions evicted to their WAL
  std::uint64_t reactivations = 0;       // passivated sessions recovered
  std::uint64_t read_timeouts = 0;       // connections cut for slow reads
  std::uint64_t resident_sessions = 0;   // sessions currently in memory
  std::uint64_t resident_bytes = 0;      // their estimated footprint
  ServerMode mode = ServerMode::kServing;
  GroupCommitStats group;
};

// Per-connection read deadlines for ServeConnection (network transports).
// idle bounds the wait for a request's first byte; frame bounds the time
// from first byte to complete message — the slowloris guard. 0 = no bound.
struct ConnectionLimits {
  int idle_timeout_ms = 0;
  int frame_timeout_ms = 0;
};

class PivotServer {
 public:
  // Opens (or creates) the data directory and the shared group-commit log.
  // An existing group log is scanned — its torn tail truncated — and
  // indexed for per-session reconciliation at kRecover time.
  explicit PivotServer(ServerOptions options);
  ~PivotServer();
  PivotServer(const PivotServer&) = delete;
  PivotServer& operator=(const PivotServer&) = delete;

  // Executes one request against the hosted sessions; never throws for
  // protocol-level failures — they come back as typed Response statuses.
  // FaultInjectedError (the crash harness) does propagate, after flipping
  // the server into kCrashed.
  Response Execute(const Request& req);

  // Serves length-prefixed request/response messages on `fd` until EOF or
  // a transport error. Does not close the fd. With limits, a client that
  // idles past idle_timeout_ms or dribbles a message slower than
  // frame_timeout_ms is disconnected (counted in stats().read_timeouts).
  void ServeConnection(int fd);
  void ServeConnection(int fd, const ConnectionLimits& limits);

  // Stops admissions, waits for in-flight requests, flushes the group log.
  // Idempotent.
  void Drain();

  ServerMode mode() const { return mode_.load(std::memory_order_acquire); }
  ServerStats stats() const;

  // The paths this server uses (tests poke at the files directly).
  std::string GroupWalPath() const;
  std::string SessionWalPath(const std::string& name) const;

 private:
  struct Hosted;
  class ServerJournal;

  std::shared_ptr<Hosted> FindSession(const std::string& name);
  // Reserve a session name with a still-initializing entry / roll the
  // reservation back (see the definitions for the locking story).
  bool PublishInitializing(const std::shared_ptr<Hosted>& hosted,
                           std::unique_lock<std::timed_mutex>& init);
  void Unpublish(const std::shared_ptr<Hosted>& hosted);
  Response Dispatch(const Request& req, std::chrono::steady_clock::time_point
                                            deadline);
  Response DoOpen(const Request& req);
  Response DoRecover(const Request& req);
  // Passivation: final durable snapshot, release Session + journal, keep a
  // stub with the acked-txn watermark. Caller holds hosted->mu and has
  // verified the session is live. Returns false when the WAL could not be
  // made durable (the session stays resident; the server degrades).
  bool PassivateLocked(const std::shared_ptr<Hosted>& hosted);
  // Reactivation through Session::Recover + journal reattach. Caller holds
  // hosted->mu on a passivated stub; throws on failure (the stub survives
  // for a later retry).
  void ReactivateLocked(const std::shared_ptr<Hosted>& hosted);
  // Budget enforcement: passivate LRU sessions until resident bytes/count
  // fit the lifecycle options. Called with no session lock held; at most
  // one enforcement pass runs at a time.
  void MaybePassivate();
  // Refreshes the LRU entry (and byte estimate) for a live session the
  // current request just used. Caller holds hosted->mu.
  void TouchLru(const std::string& name, Session& session);
  // Idle sweep (LifecycleOptions::idle_passivate_ms): passivates sessions
  // untouched past the cutoff until asked to stop.
  void ReaperLoop();
  void StopReaper();
  // The gwal retention pass: sync every open session's WAL (one session
  // locked at a time, none held while blocking on the group worker),
  // collect watermarks, and ask the group log to drop covered frames.
  Response DoCompactGwal();
  // Size-threshold trigger for the pass; runs at most once concurrently
  // and must be called with no session lock held.
  void MaybeAutoCompact();
  void ReconcileSessionWal(const std::string& name);
  void Degrade(const char* why);

  const ServerOptions options_;
  std::atomic<ServerMode> mode_{ServerMode::kServing};
  std::unique_ptr<GroupCommitLog> group_;

  // Frames per session recorded in the group log at startup (the
  // reconciliation source). Never mutated after the constructor.
  std::map<std::string, std::vector<GroupFrame>> group_index_;
  // Per-session cumulative txn envelopes reclaimed by gwal compaction, as
  // recorded by retention marks at startup: reconciliation accepts that
  // many leading session-WAL txn frames without a group counterpart.
  // Never mutated after the constructor.
  std::map<std::string, std::uint64_t> group_dropped_;
  std::atomic<bool> gwal_compacting_{false};

  mutable std::mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<Hosted>> sessions_;
  // Sessions whose WAL is already in line with the group log as of THIS
  // process (created fresh, or reconciled once against the startup index).
  // Later recovers of such a session must NOT re-align against the stale
  // startup index: every frame a live, non-crashed server appended after
  // startup was group-acked before OnCommit returned, and the index knows
  // nothing about it. Guarded by sessions_mu_.
  std::set<std::string> reconciled_;
  // Resident sessions by recency, with byte estimates (guarded by
  // sessions_mu_). Passivated stubs and closed sessions are not in it.
  SessionLru lru_;
  std::atomic<bool> passivating_{false};

  // Idle reaper (started only when idle_passivate_ms > 0).
  std::mutex reaper_mu_;
  std::condition_variable reaper_cv_;
  bool reaper_stop_ = false;  // guarded by reaper_mu_
  std::thread reaper_;

  std::atomic<int> inflight_{0};
  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace pivot

#endif  // PIVOT_SERVER_SERVER_H_
