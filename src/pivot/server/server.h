// The hardened multi-session PIVOT server.
//
// PivotServer hosts many concurrent Sessions, each durably journaled to a
// per-session WAL under `data_dir`, with commits funneled through one
// shared group-commit log (see server/group_commit.h) so that N concurrent
// committers pay one fsync, not N. Robustness is the point:
//
//   * admission control — a global in-flight bound and a per-session
//     in-flight bound; past either the request is rejected immediately
//     with kOverloaded (retryable), it is never queued unboundedly;
//   * deadlines — a request may carry deadline_ms; the server checks it at
//     admission, after acquiring the session lock, and just before the
//     group-commit enqueue (the point of no return). Past the deadline the
//     request fails with kDeadlineExceeded instead of burning a slot;
//   * graceful degradation — a permanent write fault (transient retries
//     exhausted; see persist/wal.h) flips the server into kDegraded:
//     reads (source/history/canundo/stats/ping) keep being served, every
//     commit is refused with kDegraded and a typed error. Nothing crashes;
//   * graceful drain — Drain() stops admissions (kShuttingDown,
//     retryable), waits for in-flight requests, flushes and fsyncs the
//     group log. The SIGTERM half of tools/pivot_serve.
//
// Durability contract (crash-swept in tests/server_crash_test.cc): per-
// session WALs are appended WITHOUT fsync; the single group-log fsync is
// the only durability point, and a commit is acknowledged only after it.
// On startup the server scans the group log and reconciles each session
// WAL against it by content — re-appending acked frames a crash kept out
// of the unsynced per-session file and dropping unacknowledged leftovers
// past the acked prefix — so kill-at-any-point never loses an
// acknowledged commit.
#ifndef PIVOT_SERVER_SERVER_H_
#define PIVOT_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "pivot/core/session.h"
#include "pivot/persist/durable.h"
#include "pivot/server/group_commit.h"
#include "pivot/server/protocol.h"

namespace pivot {

struct ServerOptions {
  // Directory holding `server.gwal` plus one `<session>.wal` per session.
  // Created if missing.
  std::string data_dir;
  // Options for every hosted session (genesis options are per-session and
  // persisted; this is the template for kOpen).
  SessionOptions session;
  // Per-session snapshot policy, as PersistOptions::snapshot_interval.
  int snapshot_interval = 64;
  GroupCommitOptions commit;
  // Admission control: hard bound on requests executing at once across the
  // server / within one session. Past either: kOverloaded, retryable.
  int max_inflight = 256;
  int session_inflight = 8;
  // Admit the test-only ops (kSleep) — tools keep this off.
  bool enable_test_ops = false;
  // Run a gwal retention pass automatically once the group log exceeds
  // this many bytes (fsync each open session's WAL, then drop group
  // frames those WALs already hold durably — see GroupCommitLog::
  // Compact). 0 = only on explicit ServerOp::kCompact.
  std::uint64_t gwal_compact_bytes = 0;
};

enum class ServerMode {
  kServing,
  kDegraded,  // permanent write fault: reads only, commits refused
  kDraining,  // Drain() in progress: everything refused, retryable
  kStopped,   // drained
  kCrashed,   // crash-harness fault fired: everything refused
};

const char* ServerModeName(ServerMode mode);

struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t commits = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_degraded = 0;
  std::uint64_t transient_absorbed = 0;  // FaultInjector transient count
  ServerMode mode = ServerMode::kServing;
  GroupCommitStats group;
};

class PivotServer {
 public:
  // Opens (or creates) the data directory and the shared group-commit log.
  // An existing group log is scanned — its torn tail truncated — and
  // indexed for per-session reconciliation at kRecover time.
  explicit PivotServer(ServerOptions options);
  ~PivotServer();
  PivotServer(const PivotServer&) = delete;
  PivotServer& operator=(const PivotServer&) = delete;

  // Executes one request against the hosted sessions; never throws for
  // protocol-level failures — they come back as typed Response statuses.
  // FaultInjectedError (the crash harness) does propagate, after flipping
  // the server into kCrashed.
  Response Execute(const Request& req);

  // Serves length-prefixed request/response messages on `fd` until EOF or
  // a transport error. Does not close the fd.
  void ServeConnection(int fd);

  // Stops admissions, waits for in-flight requests, flushes the group log.
  // Idempotent.
  void Drain();

  ServerMode mode() const { return mode_.load(std::memory_order_acquire); }
  ServerStats stats() const;

  // The paths this server uses (tests poke at the files directly).
  std::string GroupWalPath() const;
  std::string SessionWalPath(const std::string& name) const;

 private:
  struct Hosted;
  class ServerJournal;

  std::shared_ptr<Hosted> FindSession(const std::string& name);
  // Reserve a session name with a still-initializing entry / roll the
  // reservation back (see the definitions for the locking story).
  bool PublishInitializing(const std::shared_ptr<Hosted>& hosted,
                           std::unique_lock<std::timed_mutex>& init);
  void Unpublish(const std::shared_ptr<Hosted>& hosted);
  Response Dispatch(const Request& req, std::chrono::steady_clock::time_point
                                            deadline);
  Response DoOpen(const Request& req);
  Response DoRecover(const Request& req);
  // The gwal retention pass: sync every open session's WAL (one session
  // locked at a time, none held while blocking on the group worker),
  // collect watermarks, and ask the group log to drop covered frames.
  Response DoCompactGwal();
  // Size-threshold trigger for the pass; runs at most once concurrently
  // and must be called with no session lock held.
  void MaybeAutoCompact();
  void ReconcileSessionWal(const std::string& name);
  void Degrade(const char* why);

  const ServerOptions options_;
  std::atomic<ServerMode> mode_{ServerMode::kServing};
  std::unique_ptr<GroupCommitLog> group_;

  // Frames per session recorded in the group log at startup (the
  // reconciliation source). Never mutated after the constructor.
  std::map<std::string, std::vector<GroupFrame>> group_index_;
  // Per-session cumulative txn envelopes reclaimed by gwal compaction, as
  // recorded by retention marks at startup: reconciliation accepts that
  // many leading session-WAL txn frames without a group counterpart.
  // Never mutated after the constructor.
  std::map<std::string, std::uint64_t> group_dropped_;
  std::atomic<bool> gwal_compacting_{false};

  mutable std::mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<Hosted>> sessions_;
  // Sessions whose WAL is already in line with the group log as of THIS
  // process (created fresh, or reconciled once against the startup index).
  // Later recovers of such a session must NOT re-align against the stale
  // startup index: every frame a live, non-crashed server appended after
  // startup was group-acked before OnCommit returned, and the index knows
  // nothing about it. Guarded by sessions_mu_.
  std::set<std::string> reconciled_;

  std::atomic<int> inflight_{0};
  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace pivot

#endif  // PIVOT_SERVER_SERVER_H_
