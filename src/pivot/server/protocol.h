// Wire protocol of the multi-session PIVOT server.
//
// Transport: length-prefixed binary messages over a byte stream (a UNIX
// socket in the daemon, a socketpair in tests):
//
//   message := <u32 payload length> <u32 CRC32C(payload)> <payload>
//
// little-endian, the same framing discipline as the WAL. The payload is a
// deterministic token stream (persist/token.h) — the same codec family the
// durable journal uses, so a request can carry a full TxnDescriptor
// (persist/wire's EncodeTxn output) as its operation body and the server
// replays it through the ordinary Session API.
//
// Every response carries a typed status code. `retryable` marks errors
// the client may retry with backoff (admission-control rejections, a
// draining server); precondition failures and degraded-mode refusals are
// not retryable — retrying cannot help until the operator intervenes.
#ifndef PIVOT_SERVER_PROTOCOL_H_
#define PIVOT_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pivot/support/diagnostics.h"
#include "pivot/support/ids.h"

namespace pivot {

inline constexpr std::uint32_t kServerProtocolVersion = 1;
// Frame-size guard: a corrupt length prefix must not drive allocation.
inline constexpr std::uint32_t kMaxMessageBytes = 64u << 20;

enum class ServerOp {
  kPing = 0,
  kOpen,      // create a session from inline source (refuses existing WALs)
  kRecover,   // reconcile + recover a session's WAL from disk and host it
  kClose,     // stop hosting (the WAL stays for a later kRecover)
  kApply,     // apply opportunity [op_index] of a transform kind
  kTxn,       // replay a persist/wire TxnDescriptor (applies, undos, edits)
  kUndo,      // undo one stamp
  kUndoSet,   // batch-undo a stamp set
  kUndoLast,  // undo the most recent live transformation
  kCanUndo,   // undo-planning query; served even in degraded mode
  kSource,    // current program text
  kHistory,   // rendered transformation history
  kStats,     // server-wide counters, mode, group-commit statistics
  kSleep,     // test-only: hold the session lock for N ms (admission /
              // deadline tests); refused unless ServerOptions enables it
  kCompact,   // gwal retention pass: fsync session WALs, then drop group
              // frames already durable in them
  kShutdown,  // graceful drain
};

const char* ServerOpName(ServerOp op);

enum class StatusCode {
  kOk = 0,
  kBadRequest,        // malformed request, unknown op, bad session name
  kNoSuchSession,
  kSessionExists,     // kOpen over a live session or an existing WAL
  kPrecondition,      // the operation itself failed (stale site, blocked
                      // undo, ...); the session rolled back and is clean
  kOverloaded,        // admission control: queue/inflight bound hit; retry
  kDeadlineExceeded,  // the per-request deadline expired server-side
  kDegraded,          // read-only mode after a permanent write fault:
                      // commits refused, reads still served
  kShuttingDown,      // draining: no new work admitted
  kCrashed,           // the server hit an unrecoverable fault; restart and
                      // recover
};

const char* StatusCodeName(StatusCode code);
bool StatusRetryable(StatusCode code);

struct Request {
  ServerOp op = ServerOp::kPing;
  std::string session;
  // Server-side deadline budget for this request, 0 = none. The clock
  // starts at admission; the deadline is enforced while queued for the
  // session lock, before execution, and before the commit is enqueued for
  // group commit (the point of no return).
  std::uint32_t deadline_ms = 0;
  std::string source;            // kOpen: initial program text
  int kind = -1;                 // kApply: TransformKind index
  std::uint32_t op_index = 0;    // kApply: which opportunity of that kind
  std::vector<OrderStamp> stamps;  // kUndo (1) / kUndoSet / kCanUndo (1)
  std::string txn_body;          // kTxn: persist/wire EncodeTxn payload
  std::uint64_t sleep_ms = 0;    // kSleep
};

struct Response {
  StatusCode status = StatusCode::kOk;
  bool retryable = false;
  std::string error;        // human-readable failure detail
  OrderStamp stamp = 0;     // produced stamp (kApply, kUndoLast)
  std::uint64_t value = 0;  // op-specific count (undone transforms, CanUndo)
  std::string text;         // kSource / kHistory / kStats / recovery report
};

// Token-stream codecs; Decode* throw ProgramError on malformed payloads.
std::string EncodeRequest(const Request& req);
Request DecodeRequest(const std::string& payload);
std::string EncodeResponse(const Response& resp);
Response DecodeResponse(const std::string& payload);

// Framed transport over an fd. ReadMessage returns false on a clean EOF at
// a message boundary and throws ProgramError on truncation, a CRC
// mismatch, an oversized length, or an I/O error (EINTR is retried).
// WriteMessage never raises SIGPIPE — a vanished peer surfaces as
// ProgramError.
bool ReadMessage(int fd, std::string* payload);
void WriteMessage(int fd, const std::string& payload);

// A read deadline expired (see the timed ReadMessage overload). Distinct
// from ProgramError so the server can count slow-client disconnections
// separately from transport garbage.
class ReadTimeoutError : public ProgramError {
 public:
  explicit ReadTimeoutError(const std::string& what)
      : ProgramError("read timeout: " + what) {}
};

// ReadMessage with per-message deadlines, for network transports where a
// peer may stall indefinitely. `idle_ms` bounds the wait for a message's
// FIRST byte (an idle but healthy connection); `frame_ms` bounds the time
// from that first byte until the complete message has arrived — the
// slowloris guard: a client dribbling one byte per poll interval cannot
// pin a server thread forever. Either 0 disables that bound. Throws
// ReadTimeoutError when a deadline expires (possibly mid-message — the
// connection is no longer framable and must be dropped).
bool ReadMessage(int fd, std::string* payload, int idle_ms, int frame_ms);

// Typed failures of the server's commit path; Execute maps them to the
// matching status codes.
class ServerOverloadedError : public ProgramError {
 public:
  explicit ServerOverloadedError(const std::string& what)
      : ProgramError("overloaded: " + what) {}
};

class DeadlineExceededError : public ProgramError {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : ProgramError("deadline exceeded: " + what) {}
};

class ServerDegradedError : public ProgramError {
 public:
  explicit ServerDegradedError(const std::string& what)
      : ProgramError("degraded (read-only): " + what) {}
};

// A commit raced Drain()/shutdown. Maps to kShuttingDown (retryable): the
// client should retry against the restarted server, unlike a write-fault
// degradation where retrying cannot help.
class ServerShuttingDownError : public ProgramError {
 public:
  explicit ServerShuttingDownError(const std::string& what)
      : ProgramError("shutting down: " + what) {}
};

// A permanent write fault in the server's WAL path (transient retries
// exhausted). The server escalates this to degraded mode instead of dying.
class ServerWriteFaultError : public ProgramError {
 public:
  explicit ServerWriteFaultError(const std::string& what)
      : ProgramError("write fault: " + what) {}
};

}  // namespace pivot

#endif  // PIVOT_SERVER_PROTOCOL_H_
