// The server's group-commit path.
//
// BENCH_journal puts the cost of one durable commit at ~145 µs, almost all
// of it fsync(2); the bare append is ~4.6 µs. When 64 sessions commit
// concurrently, 64 per-session fsyncs serialize into ~9 ms of disk time —
// batching every frame that is in flight into ONE shared-log fsync is the
// throughput unlock this module provides.
//
// Mechanics: per-session WALs are appended *without* fsync; each committed
// frame is additionally enqueued here as a (session, frame type, body)
// envelope. A dedicated worker drains the queue, appends the whole batch
// to the shared `server.gwal`, issues a single fsync, and only then wakes
// the waiting sessions — a commit is acknowledged to a client exactly when
// the group fsync covering its frame returns. On restart, recovery
// reconciles each session WAL against the group log (re-appending acked
// frames a crash kept out of the unsynced per-session file), so the shared
// fsync is the *only* durability point and no acknowledged commit is ever
// lost.
//
// Robustness:
//   * the queue is bounded — a full queue rejects with
//     ServerOverloadedError (retryable) instead of buffering unboundedly;
//   * write faults inside the batch are classified: FaultInjectedError is
//     the crash harness (state kCrashed, file left exactly as the crash
//     left it), any other I/O failure is a permanent fault after the WAL
//     layer's transient retries — the batch is rolled back off the log
//     (best effort) and the server degrades to read-only (kDegraded)
//     instead of dying;
//   * Drain() stops admissions, flushes everything queued, fsyncs and
//     joins the worker — the graceful half of SIGTERM.
#ifndef PIVOT_SERVER_GROUP_COMMIT_H_
#define PIVOT_SERVER_GROUP_COMMIT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "pivot/persist/filelock.h"
#include "pivot/persist/wal.h"

namespace pivot {

struct GroupCommitOptions {
  // fsync the shared log before acknowledging commits. Off = bench mode
  // (durability left to the kernel), same trade as PersistOptions::fsync.
  bool fsync = true;
  // One fsync per *batch* (the whole point). false = one fsync per frame,
  // the per-commit baseline bench_server A/Bs against.
  bool group_fsync = true;
  // Bound on frames queued but not yet on disk; beyond it Commit rejects
  // with ServerOverloadedError.
  int max_queue = 256;
};

struct GroupCommitStats {
  std::uint64_t frames = 0;         // frames appended to the shared log
  std::uint64_t batches = 0;        // batches written
  std::uint64_t fsyncs = 0;         // fsync(2) calls issued
  std::uint64_t max_batch = 0;      // largest batch observed
  std::uint64_t rejected_full = 0;  // Commit rejections (queue full)
  std::uint64_t compactions = 0;    // retention rewrites completed
};

// Decodes/encodes the kGroup envelope body. Two record shapes share the
// frame type:
//   "g" <session> <frame type> <body>   — a group-committed frame
//   "m" <session> <dropped>             — a retention mark: compaction
//       dropped the session's first <dropped> txn envelopes (cumulative
//       count; a later mark supersedes an earlier one). Reconciliation
//       accepts that many leading session-WAL txn frames without a group
//       counterpart — they were verified durable in the per-session file
//       before the envelopes were reclaimed.
std::string EncodeGroupFrame(const std::string& session, FrameType type,
                             const std::string& body);
std::string EncodeGroupMark(const std::string& session, std::uint64_t dropped);
struct GroupFrame {
  std::string session;
  FrameType type = FrameType::kTxn;
  std::string body;
  bool mark = false;          // true: a retention mark, body/type unused
  std::uint64_t dropped = 0;  // mark only: cumulative dropped txn envelopes
};
GroupFrame DecodeGroupFrame(const std::string& body);  // throws ProgramError

class GroupCommitLog {
 public:
  enum class Failure { kNone, kDegraded, kCrashed };

  // `create` truncates/initializes the file; otherwise appends after the
  // (already truncated to valid) end. Holds the journal flock for the
  // object's lifetime. `on_failure` runs once, on the worker thread, when
  // the log transitions into kDegraded/kCrashed.
  GroupCommitLog(const std::string& path, bool create,
                 GroupCommitOptions options,
                 std::function<void(Failure)> on_failure);
  ~GroupCommitLog();
  GroupCommitLog(const GroupCommitLog&) = delete;
  GroupCommitLog& operator=(const GroupCommitLog&) = delete;

  // Blocks until the batch containing this frame is durable (group fsync
  // returned). Throws ServerOverloadedError (queue full),
  // ServerShuttingDownError (racing Drain/shutdown; retryable),
  // ServerDegradedError / ServerWriteFaultError (log failed), or the
  // crash-harness FaultInjectedError.
  void Commit(const std::string& session, FrameType type,
              const std::string& body);

  // Stops admitting, flushes every queued frame — including a batch the
  // worker already holds in flight, whose group fsync must complete before
  // "drained" is reported — fsyncs, joins the worker. Idempotent; later
  // Commit calls fail with ServerShuttingDownError.
  void Drain();

  // Retention: rewrites the log, dropping each session's first
  // `watermarks[session]` txn envelopes (counted from the log's logical
  // start, i.e. including envelopes reclaimed by earlier passes) and
  // recording the new cumulative count in a retention mark. The caller
  // vouches that those envelopes are durable (fsynced) in the session's
  // own WAL — that is the entire safety argument for reclaiming them.
  // Genesis envelopes are always kept. The rewrite goes to
  // `<path>.compact`, is fsynced, and renamed over the log atomically;
  // a crash at any byte leaves the complete old log or the complete new
  // one. Runs on the worker thread (the writer is worker-owned); blocks
  // until the pass completes and rethrows its failure, if any.
  void Compact(std::map<std::string, std::uint64_t> watermarks);

  // Current log size in bytes (maintained by the worker; safe to read from
  // any thread). The size-threshold trigger for retention passes.
  std::uint64_t bytes() const {
    return log_bytes_.load(std::memory_order_acquire);
  }

  Failure failure() const;
  GroupCommitStats stats() const;

 private:
  struct Ticket {
    std::string session;
    FrameType type;
    std::string body;
    bool done = false;
    std::exception_ptr error;
  };

  void WorkerLoop();
  // Runs one retention rewrite on the worker thread. Returns the error to
  // hand the requester (nullptr on success).
  std::exception_ptr DoCompact(
      const std::map<std::string, std::uint64_t>& watermarks);
  // Marks the log failed and fails `batch` + everything queued. Called on
  // the worker thread with mu_ NOT held.
  void FailAll(Failure failure, std::exception_ptr error,
               std::deque<std::shared_ptr<Ticket>>& batch);

  const std::string path_;
  const GroupCommitOptions options_;
  const std::function<void(Failure)> on_failure_;
  FileLock lock_;
  WalWriter writer_;  // worker-thread only (after construction)
  std::atomic<std::uint64_t> log_bytes_{0};

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  // worker waits for frames / stop
  std::condition_variable done_cv_;   // committers wait for their ticket
  std::deque<std::shared_ptr<Ticket>> queue_;
  // True while the worker holds a swapped-out batch whose tickets are not
  // all resolved yet — Drain must wait this out, not just an empty queue.
  bool inflight_ = false;
  // Pending retention request (one at a time; see Compact).
  std::optional<std::map<std::string, std::uint64_t>> compact_request_;
  bool compact_active_ = false;
  bool compact_done_ = false;
  std::exception_ptr compact_error_;
  bool draining_ = false;
  bool stop_ = false;
  Failure failure_ = Failure::kNone;
  std::exception_ptr failure_error_;
  GroupCommitStats stats_;

  std::thread worker_;  // last member: starts after everything else exists
};

}  // namespace pivot

#endif  // PIVOT_SERVER_GROUP_COMMIT_H_
