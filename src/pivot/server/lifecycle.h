// Session lifecycle under memory pressure.
//
// PivotServer keeps every opened session resident forever, so thousands of
// idle sessions exhaust the process long before traffic does. The paper's
// premise — session state is a deterministic function of the journal — is
// the license to *passivate* an idle session: append one final snapshot,
// fsync the WAL, release the in-memory Session and its journal, and keep
// only a stub carrying the acked-transaction watermark. The next request
// for the name *reactivates* it transparently through the ordinary
// Session::Recover path (snapshot + tail replay), so clients never observe
// the eviction beyond latency.
//
// This header holds the policy knobs and the byte-accounted LRU the server
// uses to pick victims; the passivation/reactivation machinery itself lives
// in server.cc (it needs the ServerJournal internals).
#ifndef PIVOT_SERVER_LIFECYCLE_H_
#define PIVOT_SERVER_LIFECYCLE_H_

#include <chrono>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

namespace pivot {

class Session;

struct LifecycleOptions {
  // Byte budget for resident sessions (as estimated by
  // EstimateSessionBytes), 0 = unlimited. Past it the server passivates
  // least-recently-used sessions until back under budget.
  std::uint64_t memory_budget_bytes = 0;
  // Hard cap on the number of resident sessions, 0 = unlimited.
  int max_resident = 0;
  // Passivate sessions untouched for this long, swept by a background
  // reaper thread. 0 = no reaper; only budget pressure evicts.
  std::uint64_t idle_passivate_ms = 0;
  // How often the reaper wakes to look for idle sessions.
  std::uint64_t reaper_interval_ms = 100;
  // After the final passivation snapshot, rewrite the session WAL down to
  // genesis + snapshot + tail (atomic tmp + rename, crash-swept like
  // persist compaction) so a passivated session's disk footprint tracks
  // its live state, not its whole history. The rewrite pushes the dropped
  // txn count into the snapshot's `base` clause (persist/wire.h) so gwal
  // reconciliation still aligns by absolute transaction index.
  bool compact_on_passivate = true;
};

// Byte-accounted LRU over the names of resident sessions. Front of the
// order is least recently used. Not thread-safe — the server guards it
// with its sessions mutex.
class SessionLru {
 public:
  using Clock = std::chrono::steady_clock;

  // Inserts or refreshes `name` as most-recently-used with a new byte
  // estimate.
  void Touch(const std::string& name, std::uint64_t bytes,
             Clock::time_point now);
  // Removes `name` (no-op when absent): closed or passivated sessions
  // leave the resident set.
  void Remove(const std::string& name);

  bool Contains(const std::string& name) const {
    return index_.count(name) != 0;
  }
  std::size_t size() const { return index_.size(); }
  std::uint64_t total_bytes() const { return total_bytes_; }

  // Victim candidates, least recently used first. `idle_cutoff` filters to
  // entries last touched at or before it (pass Clock::time_point::max()
  // for "any"); `limit` bounds the copy.
  std::vector<std::string> Victims(Clock::time_point idle_cutoff,
                                   std::size_t limit) const;

 private:
  struct Entry {
    std::string name;
    std::uint64_t bytes = 0;
    Clock::time_point touched;
  };
  std::list<Entry> order_;  // front = least recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t total_bytes_ = 0;
};

// Rough resident-footprint estimate for budget accounting: statements,
// journal records (payload trees included) and history records, each at a
// flat per-record cost, plus a fixed overhead for the analysis cache and
// engine. Deliberately cheap — it reads container sizes, never prints the
// program — and deliberately an estimate: the budget bounds growth, it is
// not an allocator.
std::uint64_t EstimateSessionBytes(Session& session);

}  // namespace pivot

#endif  // PIVOT_SERVER_LIFECYCLE_H_
