#include "pivot/server/listener.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "pivot/support/diagnostics.h"

namespace pivot {
namespace {

[[noreturn]] void BindError(const std::string& what) {
  throw ProgramError("listener: " + what + ": " + std::strerror(errno));
}

int ListenUnix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw ProgramError("listener: unix socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) BindError("cannot create unix socket");
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, backlog) != 0) {
    ::close(fd);
    BindError("cannot listen on " + path);
  }
  return fd;
}

int ListenTcp(const std::string& host, int port, int backlog,
              int* bound_port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    throw ProgramError("listener: cannot resolve " + host + ": " +
                       ::gai_strerror(rc));
  }
  int fd = -1;
  int saved_errno = 0;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      saved_errno = errno;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, backlog) == 0) {
      break;
    }
    saved_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    errno = saved_errno;
    BindError("cannot listen on " + host + ":" + std::to_string(port));
  }
  // Resolve an ephemeral port request to the port the kernel picked.
  sockaddr_storage bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    if (bound.ss_family == AF_INET) {
      *bound_port =
          ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
    } else if (bound.ss_family == AF_INET6) {
      *bound_port =
          ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
    }
  }
  return fd;
}

}  // namespace

ServerListener::ServerListener(PivotServer& server, ListenerOptions options)
    : server_(server), options_(std::move(options)) {
  PIVOT_CHECK_MSG(!options_.unix_path.empty() || !options_.tcp_host.empty(),
                  "listener needs a unix path or a TCP host");
  if (!options_.unix_path.empty()) {
    unix_fd_ = ListenUnix(options_.unix_path, options_.backlog);
  }
  if (!options_.tcp_host.empty()) {
    tcp_port_ = options_.tcp_port;
    try {
      tcp_fd_ = ListenTcp(options_.tcp_host, options_.tcp_port,
                          options_.backlog, &tcp_port_);
    } catch (...) {
      if (unix_fd_ >= 0) {
        ::close(unix_fd_);
        ::unlink(options_.unix_path.c_str());
        unix_fd_ = -1;
      }
      throw;
    }
  }
}

ServerListener::~ServerListener() {
  Shutdown();
  // If Run() never ran (or already returned), the join loop below is what
  // reaps any threads it left behind; Run() itself joins on exit, so this
  // is a no-op after a clean Run().
  for (std::thread& t : connections_) {
    if (t.joinable()) t.join();
  }
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    ::unlink(options_.unix_path.c_str());
  }
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
}

void ServerListener::Shutdown() {
  stop_.store(true, std::memory_order_release);
  // shutdown(2), not close(2): the fds stay valid (no reuse race with a
  // concurrent poll) but every blocked accept/poll wakes with the socket
  // readable-and-dead. Async-signal-safe.
  if (unix_fd_ >= 0) ::shutdown(unix_fd_, SHUT_RDWR);
  if (tcp_fd_ >= 0) ::shutdown(tcp_fd_, SHUT_RDWR);
}

void ServerListener::AcceptOne(int listen_fd) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return;  // raced Shutdown(), or a transient accept failure
  if (listen_fd == tcp_fd_) {
    // The protocol writes header then payload as two send()s; without
    // TCP_NODELAY, Nagle holds the second behind the peer's delayed ACK
    // and every request eats a ~40ms stall.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  {
    std::lock_guard<std::mutex> lock(fds_mu_);
    live_fds_.insert(fd);
  }
  connections_.emplace_back([this, fd] {
    try {
      server_.ServeConnection(fd, options_.limits);
    } catch (...) {
      // FaultInjectedError (crash harness) or transport surprise: this
      // connection dies, the listener keeps serving the rest.
    }
    {
      std::lock_guard<std::mutex> lock(fds_mu_);
      live_fds_.erase(fd);
    }
    ::close(fd);
  });
}

void ServerListener::Run() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfds[2];
    nfds_t n = 0;
    if (unix_fd_ >= 0) pfds[n++] = pollfd{unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) pfds[n++] = pollfd{tcp_fd_, POLLIN, 0};
    // Bounded poll so a client-initiated drain (server kStopped, no
    // further connection ever arrives) still ends the loop.
    const int ready = ::poll(pfds, n, 200);
    if (server_.mode() == ServerMode::kStopped) break;
    if (stop_.load(std::memory_order_acquire)) break;
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    for (nfds_t i = 0; i < n; ++i) {
      if (pfds[i].revents != 0) AcceptOne(pfds[i].fd);
    }
  }
  // Kick idle connections off their blocking reads, then reap the threads.
  {
    std::lock_guard<std::mutex> lock(fds_mu_);
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : connections_) {
    if (t.joinable()) t.join();
  }
  connections_.clear();
}

int DialUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    errno = ENAMETOOLONG;
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

int DialTcp(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &res) != 0) {
    errno = EHOSTUNREACH;
    return -1;
  }
  int fd = -1;
  int saved_errno = ECONNREFUSED;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      saved_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      // Mirror of the listener's accept-side setting (see AcceptOne).
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      break;
    }
    saved_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) errno = saved_errno;
  return fd;
}

bool ParseHostPort(const std::string& spec, std::string* host, int* port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return false;
  }
  char* end = nullptr;
  const long value = std::strtol(spec.c_str() + colon + 1, &end, 10);
  // Port 0 is allowed: for a listener it requests an ephemeral port.
  if (end == nullptr || *end != '\0' || value < 0 || value > 65535) {
    return false;
  }
  *host = spec.substr(0, colon);
  *port = static_cast<int>(value);
  return true;
}

}  // namespace pivot
