#include "pivot/server/lifecycle.h"

#include "pivot/core/session.h"

namespace pivot {

void SessionLru::Touch(const std::string& name, std::uint64_t bytes,
                       Clock::time_point now) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    total_bytes_ -= it->second->bytes;
    order_.erase(it->second);
    index_.erase(it);
  }
  order_.push_back(Entry{name, bytes, now});
  index_.emplace(name, std::prev(order_.end()));
  total_bytes_ += bytes;
}

void SessionLru::Remove(const std::string& name) {
  auto it = index_.find(name);
  if (it == index_.end()) return;
  total_bytes_ -= it->second->bytes;
  order_.erase(it->second);
  index_.erase(it);
}

std::vector<std::string> SessionLru::Victims(Clock::time_point idle_cutoff,
                                             std::size_t limit) const {
  std::vector<std::string> out;
  for (const Entry& entry : order_) {
    if (out.size() >= limit) break;
    if (entry.touched > idle_cutoff) break;  // order_ is touch-sorted
    out.push_back(entry.name);
  }
  return out;
}

std::uint64_t EstimateSessionBytes(Session& session) {
  // Flat per-record costs, sized generously: a statement is an expression
  // tree plus bookkeeping, a journal record may hold a detached payload
  // tree, a history record is mostly ids. The estimate only has to scale
  // with the session, not match the allocator.
  constexpr std::uint64_t kPerStmt = 256;
  constexpr std::uint64_t kPerJournalRecord = 512;
  constexpr std::uint64_t kPerHistoryRecord = 128;
  constexpr std::uint64_t kSessionOverhead = 8 * 1024;
  return kSessionOverhead +
         kPerStmt * session.program().AttachedStmtCount() +
         kPerJournalRecord * session.journal().records().size() +
         kPerHistoryRecord * session.history().records().size();
}

}  // namespace pivot
