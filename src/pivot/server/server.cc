#include "pivot/server/server.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <thread>

#include "pivot/ir/parser.h"
#include "pivot/persist/snapshot.h"
#include "pivot/persist/wire.h"
#include "pivot/support/fault_injector.h"

namespace pivot {
namespace {

using Clock = std::chrono::steady_clock;

constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

// The deadline of the request currently executing on this thread, visible
// to the commit path (ServerJournal::OnCommit checks it just before the
// group-commit enqueue — the point of no return).
thread_local Clock::time_point t_deadline = kNoDeadline;

struct DeadlineScope {
  explicit DeadlineScope(Clock::time_point deadline) {
    t_deadline = deadline;
  }
  ~DeadlineScope() { t_deadline = kNoDeadline; }
};

void CheckDeadline(const char* where) {
  if (t_deadline != kNoDeadline && Clock::now() >= t_deadline) {
    throw DeadlineExceededError(std::string("deadline exceeded ") + where);
  }
}

bool ReadOnlyOp(ServerOp op) {
  switch (op) {
    case ServerOp::kPing:
    case ServerOp::kCanUndo:
    case ServerOp::kSource:
    case ServerOp::kHistory:
    case ServerOp::kStats:
    case ServerOp::kSleep:
      return true;
    default:
      return false;
  }
}

Response Fail(StatusCode status, std::string error) {
  Response resp;
  resp.status = status;
  resp.retryable = StatusRetryable(status);
  resp.error = std::move(error);
  return resp;
}

bool ValidSessionName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    if (!ok) return false;
  }
  return name != "." && name != "..";
}

}  // namespace

const char* ServerModeName(ServerMode mode) {
  switch (mode) {
    case ServerMode::kServing: return "serving";
    case ServerMode::kDegraded: return "degraded";
    case ServerMode::kDraining: return "draining";
    case ServerMode::kStopped: return "stopped";
    case ServerMode::kCrashed: return "crashed";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// ServerJournal: the per-session WAL + group-commit listener
// ---------------------------------------------------------------------------

// Like persist's DurableJournal but with the durability point moved into
// the shared group-commit log: per-session appends never fsync; the frame
// body is handed to GroupCommitLog::Commit, which blocks until the batch
// containing it is durable. Snapshots stay session-local (pure read
// optimization — losing one merely lengthens replay).
class PivotServer::ServerJournal final : public CommitListener {
 public:
  static std::unique_ptr<ServerJournal> Create(Session& session,
                                               const std::string& name,
                                               const std::string& path,
                                               GroupCommitLog& group,
                                               int snapshot_interval,
                                               std::function<void()> degrade) {
    FileLock lock = FileLock::Acquire(path);
    try {
      WalWriter writer = WalWriter::Create(path);
      const std::string body =
          EncodeGenesis(session.options(), session.Source());
      writer.AppendFrame(FrameType::kGenesis, body, /*fsync=*/false,
                         "server.swal.genesis");
      auto journal = std::unique_ptr<ServerJournal>(
          new ServerJournal(session, name, std::move(lock), std::move(writer),
                            group, snapshot_interval, std::move(degrade)));
      // The genesis is acknowledged like any commit: via the group fsync.
      group.Commit(name, FrameType::kGenesis, body);
      session.set_commit_listener(journal.get());
      return journal;
    } catch (const FaultInjectedError&) {
      throw;  // crash harness: the file stays exactly as the crash left it
    } catch (...) {
      // The genesis was never group-acknowledged, so no session came into
      // existence — e.g. the group queue rejected it with kOverloaded.
      // Remove the freshly created WAL (and its lock file) or every later
      // kOpen of this name would bounce with "journal already exists" for
      // a session that was never durable. unlink(2) tolerates the fd/flock
      // still being open; both are released as the stack unwinds.
      ::unlink(path.c_str());
      ::unlink((path + ".lock").c_str());
      throw;
    }
  }

  // After recovery: append behind the (already truncated-to-valid) end.
  static std::unique_ptr<ServerJournal> Attach(Session& session,
                                               const std::string& name,
                                               const std::string& path,
                                               GroupCommitLog& group,
                                               int snapshot_interval,
                                               std::function<void()> degrade) {
    FileLock lock = FileLock::Acquire(path);
    const WalScanResult scan = ScanWal(path);
    if (!scan.header_ok || scan.frames.empty() ||
        scan.valid_bytes != scan.file_bytes) {
      throw ProgramError("server journal: " + path +
                         " is not a clean journal; recover it first");
    }
    auto journal = std::unique_ptr<ServerJournal>(
        new ServerJournal(session, name, std::move(lock),
                          WalWriter::Append(path), group, snapshot_interval,
                          std::move(degrade)));
    for (const WalFrame& frame : scan.frames) {
      if (frame.type == FrameType::kTxn) {
        ++journal->txns_;
        ++journal->since_snapshot_;
      } else if (frame.type == FrameType::kSnapshot) {
        journal->since_snapshot_ = 0;
        // Compaction (at passivation) pushes dropped txn frames into the
        // snapshot's base clause; the largest one is the file's cumulative
        // offset into the session's absolute history.
        const std::uint64_t base = DecodeSnapshotBody(frame.body).base;
        if (base > journal->base_) journal->base_ = base;
      }
    }
    session.set_commit_listener(journal.get());
    return journal;
  }

  ~ServerJournal() override {
    if (session_.commit_listener() == this) {
      session_.set_commit_listener(nullptr);
    }
  }

  void OnCommit(const TxnDescriptor& desc) override {
    if (broken_) {
      throw ServerWriteFaultError(
          "session journal poisoned by an earlier write fault");
    }
    // Last exit before work that cannot be abandoned: past this point the
    // frame goes to disk even if the client has given up on it.
    CheckDeadline("before the commit was journaled");
    const std::string body = EncodeTxn(desc, ComputeDigest(session_));
    const std::uint64_t pre = writer_.offset();
    try {
      writer_.AppendFrame(FrameType::kTxn, body, /*fsync=*/false,
                          "server.swal.txn");
    } catch (const FaultInjectedError&) {
      broken_ = true;  // crash harness: leave the torn tail as-is
      throw;
    } catch (const ProgramError& e) {
      Poison(pre);
      throw ServerWriteFaultError(std::string("session journal: ") +
                                  e.what());
    }
    PIVOT_FAULT_POINT("server.commit.enqueue.pre");
    try {
      // Blocks until the group fsync covering this frame returns — the
      // acknowledgement point of the whole server.
      group_.Commit(name_, FrameType::kTxn, body);
    } catch (const FaultInjectedError&) {
      broken_ = true;
      throw;
    } catch (...) {
      // Not durable (rejected or the group log failed): the session rolls
      // this operation back, so the frame must come off the session WAL or
      // a later recovery would replay a commit that never happened.
      Poison(pre);
      throw;
    }
    ++txns_;
    ++since_snapshot_;
  }

  // For the gwal retention pass: make this session's WAL frames durable
  // and report how many txn frames that provably covers. Only after the
  // fsync returns may the group log drop this session's envelopes — the
  // session file is then their sole durable copy.
  //
  // Runs WITHOUT the session lock (a committer parked on the group ticket
  // holds that lock for its whole commit, so a blocking acquire here
  // starves retention on a saturated server). The pre-read below is what
  // makes that safe: a frame is counted in txns_ only after its write(2)
  // returned, so every frame behind `covered` is in the file when the
  // load observes it, and the fsync — racing at most with a LATER append
  // — makes at least those bytes durable. The watermark never vouches
  // for an in-flight frame. Throws ProgramError on a permanent fsync
  // fault (the caller skips the session).
  std::uint64_t SyncWalForRetention() {
    if (broken_.load(std::memory_order_acquire)) {
      throw ServerWriteFaultError(
          "session journal poisoned by an earlier write fault");
    }
    const std::uint64_t covered = txns_.load(std::memory_order_acquire);
    writer_.Sync();
    // Watermarks count from the group log's logical start, so a file that
    // was compacted while passivated reports its base plus what it holds.
    return base_ + covered;
  }

  bool broken() const { return broken_; }

  void OnCommitted(const TxnDescriptor& desc) override {
    (void)desc;
    if (broken_ || snapshot_interval_ <= 0) return;
    if (since_snapshot_ < static_cast<std::uint64_t>(snapshot_interval_)) {
      return;
    }
    const std::string body =
        EncodeSnapshotBody(txns_, EncodeSessionImage(session_), base_);
    const std::uint64_t pre = writer_.offset();
    try {
      writer_.AppendFrame(FrameType::kSnapshot, body, /*fsync=*/false,
                          "server.swal.snapshot");
      since_snapshot_ = 0;
    } catch (const FaultInjectedError&) {
      broken_ = true;
      throw;  // the commit itself is durable and acknowledged
    } catch (const ProgramError&) {
      // A snapshot is optional; the fault is not. Roll the torn frame off
      // (best effort) and degrade — the disk is telling us something.
      Poison(pre);
      if (degrade_) degrade_();
    }
  }

  // Passivation: one final durable snapshot (or a bare fsync when the last
  // interval snapshot already covers everything), making the file the sole
  // authority for this session's state. Returns the absolute acked-txn
  // watermark the stub carries — the count this fsync provably covers, so
  // it may keep feeding gwal retention while the session is passivated.
  // Throws ServerWriteFaultError on a permanent fault (the torn frame is
  // rolled off and the session must stay resident) and FaultInjectedError
  // for the crash harness.
  std::uint64_t PassivateToDisk() {
    if (broken_.load(std::memory_order_acquire)) {
      throw ServerWriteFaultError(
          "session journal poisoned by an earlier write fault");
    }
    const std::uint64_t pre = writer_.offset();
    try {
      if (since_snapshot_ > 0) {
        const std::string body =
            EncodeSnapshotBody(txns_, EncodeSessionImage(session_), base_);
        writer_.AppendFrame(FrameType::kSnapshot, body, /*fsync=*/true,
                            "server.evict.snapshot");
        since_snapshot_ = 0;
      } else {
        writer_.Sync();
      }
    } catch (const FaultInjectedError&) {
      broken_ = true;
      throw;
    } catch (const ProgramError& e) {
      Poison(pre);
      throw ServerWriteFaultError(std::string("passivation snapshot: ") +
                                  e.what());
    }
    return base_ + txns_.load(std::memory_order_acquire);
  }

 private:
  ServerJournal(Session& session, std::string name, FileLock lock,
                WalWriter writer, GroupCommitLog& group, int snapshot_interval,
                std::function<void()> degrade)
      : session_(session),
        name_(std::move(name)),
        lock_(std::move(lock)),
        writer_(std::move(writer)),
        group_(group),
        snapshot_interval_(snapshot_interval),
        degrade_(std::move(degrade)) {}

  // Rolls an unacknowledged frame off the WAL; when even that fails the
  // file may end mid-frame and no further append is safe.
  void Poison(std::uint64_t pre) {
    try {
      writer_.TruncateTo(pre);
    } catch (...) {
      broken_ = true;
    }
  }

  Session& session_;
  const std::string name_;
  FileLock lock_;
  WalWriter writer_;
  GroupCommitLog& group_;
  const int snapshot_interval_;
  const std::function<void()> degrade_;
  // Atomic so the retention pass can read a durable-coverage watermark
  // without taking the session lock (see SyncWalForRetention).
  std::atomic<std::uint64_t> txns_{0};
  // Cumulative txn frames compaction dropped from beneath this file (the
  // largest snapshot base at attach time); txns_ stays file-relative, so
  // the absolute acked count is base_ + txns_. Immutable after attach —
  // the file is only ever compacted while no journal owns it.
  std::uint64_t base_ = 0;
  std::uint64_t since_snapshot_ = 0;
  std::atomic<bool> broken_{false};
};

// ---------------------------------------------------------------------------
// Hosted session bookkeeping
// ---------------------------------------------------------------------------

struct PivotServer::Hosted {
  std::string name;
  // Serializes operations on this session; timed so a deadline bounds the
  // wait for a busy session instead of queueing forever.
  std::timed_mutex mu;
  std::unique_ptr<Session> session;
  // `journal` is assigned/reset under BOTH mu and retention_mu; the gwal
  // retention pass reads it under retention_mu alone, so it never has to
  // compete with committers for mu (which they hold across the group
  // ticket wait — a blocking acquire would starve retention under load).
  std::unique_ptr<ServerJournal> journal;
  std::mutex retention_mu;
  std::atomic<int> inflight{0};
  bool closed = false;  // guarded by mu
  // Passivated stub state. Written under mu; atomic because the gwal
  // retention pass reads both under retention_mu alone. The watermark is
  // the absolute acked-txn count the passivation fsync made durable in the
  // session file — while the stub stands, it keeps vouching for the
  // session's group-log envelopes (see DoCompactGwal).
  std::atomic<bool> passivated{false};
  std::atomic<std::uint64_t> acked_watermark{0};
};

namespace {

// Rewrites a clean, unowned session WAL down to genesis + the newest full
// snapshot + the frames after it, mirroring persist's compaction: the
// rewrite goes to `<path>.compact`, is fsynced, and renamed over the
// journal atomically, so a crash at any byte leaves the complete old file
// or the complete new one. Dropped txn frames are pushed into the
// snapshots' `base` clause so gwal reconciliation can still align the file
// by absolute transaction index. The caller holds the journal's flock (no
// live writer may race the rename) and runs this only at passivation —
// after the final snapshot is durable, which is what licenses dropping
// the covered prefix. Stale tmp files are removed by RecoverSession at
// reactivation, exactly like persist compaction crashes.
void CompactSessionWalFile(const std::string& path) {
  PIVOT_FAULT_POINT("server.evict.compact.pre");
  const WalScanResult scan = ScanWal(path);
  if (!scan.header_ok || scan.frames.empty() ||
      scan.valid_bytes != scan.file_bytes) {
    return;  // not a clean journal; leave it to recovery
  }
  std::size_t full = 0;
  for (std::size_t i = scan.frames.size(); i-- > 1;) {
    if (scan.frames[i].type == FrameType::kSnapshot) {
      full = i;
      break;
    }
  }
  if (full == 0) return;
  const SnapshotBody anchor = DecodeSnapshotBody(scan.frames[full].body);
  const std::uint64_t dropped = anchor.txns;
  if (dropped == 0) return;
  // Same inconsistency guard as persist's Compact: the anchor's covered
  // count must equal the txn frames actually preceding it, or nothing is
  // dropped on untrustworthy evidence.
  std::uint64_t preceding = 0;
  for (std::size_t i = 1; i < full; ++i) {
    if (scan.frames[i].type == FrameType::kTxn) ++preceding;
  }
  if (preceding != dropped) return;

  const std::string tmp = path + ".compact";
  try {
    WalWriter out = WalWriter::Create(tmp);
    out.AppendFrame(FrameType::kGenesis, scan.frames[0].body, false,
                    "server.evict.compact.frame");
    for (std::size_t i = full; i < scan.frames.size(); ++i) {
      const WalFrame& frame = scan.frames[i];
      if (frame.type == FrameType::kTxn) {
        out.AppendFrame(FrameType::kTxn, frame.body, false,
                        "server.evict.compact.frame");
      } else if (frame.type == FrameType::kSnapshot) {
        SnapshotBody body = DecodeSnapshotBody(frame.body);
        body.txns = body.txns >= dropped ? body.txns - dropped : 0;
        out.AppendFrame(
            FrameType::kSnapshot,
            EncodeSnapshotBody(body.txns, body.payload, body.base + dropped),
            false, "server.evict.compact.frame");
      }
    }
    out.Sync("server.evict.compact.tmp.synced");
    PIVOT_FAULT_POINT("server.evict.compact.rename.pre");
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      throw ProgramError("session wal compaction rename failed: " +
                         std::string(std::strerror(errno)));
    }
    PIVOT_FAULT_POINT("server.evict.compact.rename.post");
  } catch (const FaultInjectedError&) {
    throw;  // crash harness: leave everything as the crash left it
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
}

// Releases an admission slot (global or per-session) on scope exit.
struct SlotGuard {
  explicit SlotGuard(std::atomic<int>& counter) : counter_(&counter) {
    counter_->fetch_add(1, std::memory_order_acq_rel);
  }
  ~SlotGuard() { counter_->fetch_sub(1, std::memory_order_acq_rel); }
  int count() const { return counter_->load(std::memory_order_acquire); }
  std::atomic<int>* counter_;
};

}  // namespace

// ---------------------------------------------------------------------------
// PivotServer
// ---------------------------------------------------------------------------

PivotServer::PivotServer(ServerOptions options)
    : options_(std::move(options)) {
  PIVOT_CHECK_MSG(!options_.data_dir.empty(), "server needs a data_dir");
  if (::mkdir(options_.data_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw ProgramError("server: cannot create data dir " + options_.data_dir +
                       ": " + std::strerror(errno));
  }

  const std::string gwal = GroupWalPath();
  const bool fresh = ::access(gwal.c_str(), F_OK) != 0;
  if (!fresh) {
    // Scan the group log as it survived the last process: cut the torn
    // tail, then index every acked frame per session for reconciliation.
    const WalScanResult scan = ScanWal(gwal);
    if (!scan.header_ok || scan.version > kJournalFormatVersion) {
      throw ProgramError("server: " + gwal + " is not a usable group log");
    }
    if (scan.valid_bytes < scan.file_bytes) {
      TruncateWal(gwal, scan.valid_bytes);
    }
    for (const WalFrame& frame : scan.frames) {
      if (frame.type != FrameType::kGroup) {
        throw ProgramError("server: foreign frame in group log " + gwal);
      }
      GroupFrame entry = DecodeGroupFrame(frame.body);
      if (entry.mark) {
        // Retention mark: compaction reclaimed the session's first
        // `dropped` txn envelopes (cumulative; later marks supersede).
        group_dropped_[entry.session] = entry.dropped;
        continue;
      }
      group_index_[entry.session].push_back(std::move(entry));
    }
  }
  group_ = std::make_unique<GroupCommitLog>(
      gwal, fresh, options_.commit, [this](GroupCommitLog::Failure failure) {
        if (failure == GroupCommitLog::Failure::kCrashed) {
          mode_.store(ServerMode::kCrashed, std::memory_order_release);
        } else {
          Degrade("group-commit log write fault");
        }
      });
  if (options_.lifecycle.idle_passivate_ms > 0) {
    reaper_ = std::thread([this] { ReaperLoop(); });
  }
}

PivotServer::~PivotServer() {
  StopReaper();
  const ServerMode m = mode();
  if (m != ServerMode::kCrashed && m != ServerMode::kStopped) {
    try {
      Drain();
    } catch (...) {
    }
  }
  // Sessions (and their journals) die before group_ — member order.
}

std::string PivotServer::GroupWalPath() const {
  return options_.data_dir + "/server.gwal";
}

std::string PivotServer::SessionWalPath(const std::string& name) const {
  return options_.data_dir + "/" + name + ".wal";
}

void PivotServer::Degrade(const char* why) {
  ServerMode expected = ServerMode::kServing;
  if (mode_.compare_exchange_strong(expected, ServerMode::kDegraded,
                                    std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.mode = ServerMode::kDegraded;
    (void)why;
  }
}

ServerStats PivotServer::stats() const {
  ServerStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    out.resident_sessions = lru_.size();
    out.resident_bytes = lru_.total_bytes();
  }
  out.mode = mode();
  out.group = group_->stats();
  out.transient_absorbed =
      FaultInjector::Instance().transient_failures_injected();
  return out;
}

std::shared_ptr<PivotServer::Hosted> PivotServer::FindSession(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

Response PivotServer::Execute(const Request& req) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
  }

  const ServerMode m = mode();
  if (req.op == ServerOp::kPing) {
    Response resp;
    resp.status = m == ServerMode::kCrashed ? StatusCode::kCrashed
                                            : StatusCode::kOk;
    resp.text = ServerModeName(m);
    return resp;
  }
  if (m == ServerMode::kCrashed) {
    return Fail(StatusCode::kCrashed,
                "server crashed (injected fault); restart and recover");
  }
  if (req.op == ServerOp::kShutdown) {
    Drain();
    Response resp;
    resp.text = "drained";
    return resp;
  }
  if (req.op == ServerOp::kStats) {
    const ServerStats s = stats();
    std::ostringstream os;
    os << "mode=" << ServerModeName(s.mode) << " requests=" << s.requests
       << " commits=" << s.commits << " frames=" << s.group.frames
       << " batches=" << s.group.batches << " fsyncs=" << s.group.fsyncs
       << " max_batch=" << s.group.max_batch
       << " rejected_overload=" << s.rejected_overload
       << " rejected_deadline=" << s.rejected_deadline
       << " rejected_degraded=" << s.rejected_degraded
       << " transient_absorbed=" << s.transient_absorbed
       << " passivations=" << s.passivations
       << " reactivations=" << s.reactivations
       << " resident=" << s.resident_sessions
       << " resident_bytes=" << s.resident_bytes
       << " read_timeouts=" << s.read_timeouts;
    Response resp;
    resp.value = s.commits;
    resp.text = os.str();
    return resp;
  }
  if (m == ServerMode::kDraining || m == ServerMode::kStopped) {
    return Fail(StatusCode::kShuttingDown, "server is shutting down");
  }
  if (m == ServerMode::kDegraded && !ReadOnlyOp(req.op)) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected_degraded;
    return Fail(StatusCode::kDegraded,
                "server is degraded after a write fault: read-only");
  }

  // Global admission: bounded concurrency, immediate retryable rejection
  // past the bound — load sheds instead of queueing without limit.
  SlotGuard global(inflight_);
  if (global.count() > options_.max_inflight) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected_overload;
    return Fail(StatusCode::kOverloaded,
                "server at max_inflight=" +
                    std::to_string(options_.max_inflight));
  }

  const Clock::time_point deadline =
      req.deadline_ms == 0
          ? kNoDeadline
          : Clock::now() + std::chrono::milliseconds(req.deadline_ms);
  DeadlineScope scope(deadline);

  try {
    CheckDeadline("at admission");
    Response resp = Dispatch(req, deadline);
    // No session lock is held here (Dispatch released everything), which
    // is what the retention pass and budget enforcement require.
    MaybeAutoCompact();
    MaybePassivate();
    return resp;
  } catch (const FaultInjectedError&) {
    mode_.store(ServerMode::kCrashed, std::memory_order_release);
    throw;  // the crash harness owns this one
  } catch (const DeadlineExceededError& e) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected_deadline;
    return Fail(StatusCode::kDeadlineExceeded, e.what());
  } catch (const ServerOverloadedError& e) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected_overload;
    return Fail(StatusCode::kOverloaded, e.what());
  } catch (const ServerWriteFaultError& e) {
    Degrade("session journal write fault");
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected_degraded;
    return Fail(StatusCode::kDegraded, e.what());
  } catch (const ServerShuttingDownError& e) {
    // The commit raced Drain(): not a fault, retry after restart.
    return Fail(StatusCode::kShuttingDown, e.what());
  } catch (const ServerDegradedError& e) {
    // The group log already flipped the server via on_failure.
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected_degraded;
    return Fail(StatusCode::kDegraded, e.what());
  } catch (const ProgramError& e) {
    return Fail(StatusCode::kPrecondition, e.what());
  } catch (const InternalError& e) {
    // An invariant check tripped by a hostile argument (e.g. undoing a
    // stamp that never existed). The transaction guard has already rolled
    // the session back; the request fails, the server does not.
    return Fail(StatusCode::kPrecondition, e.what());
  }
}

Response PivotServer::Dispatch(const Request& req,
                               Clock::time_point deadline) {
  // Hostile session names (empty, oversized, path separators, "..") are
  // rejected at admission, before any code path could turn them into a
  // filesystem path. kPrecondition, not kBadRequest: the request itself is
  // well-formed, the name just cannot ever denote a session.
  const bool takes_session = req.op != ServerOp::kCompact &&
                             !(req.op == ServerOp::kSleep &&
                               req.session.empty());
  if (takes_session && !ValidSessionName(req.session)) {
    return Fail(StatusCode::kPrecondition,
                "invalid session name '" + req.session + "'");
  }

  switch (req.op) {
    case ServerOp::kOpen:
      return DoOpen(req);
    case ServerOp::kRecover:
      return DoRecover(req);
    case ServerOp::kCompact:
      return DoCompactGwal();
    default:
      break;
  }

  if (req.op == ServerOp::kSleep) {
    if (!options_.enable_test_ops) {
      return Fail(StatusCode::kBadRequest, "test ops are disabled");
    }
    if (req.session.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(req.sleep_ms));
      return Response{};
    }
    // With a session: fall through and sleep while holding its lock, the
    // contention generator for deadline/overload tests.
  }

  std::shared_ptr<Hosted> hosted = FindSession(req.session);
  if (hosted == nullptr) {
    return Fail(StatusCode::kNoSuchSession,
                "no open session '" + req.session + "'");
  }

  // Per-session admission, before blocking on the session lock.
  SlotGuard slot(hosted->inflight);
  if (slot.count() > options_.session_inflight) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected_overload;
    return Fail(StatusCode::kOverloaded,
                "session '" + req.session + "' at session_inflight=" +
                    std::to_string(options_.session_inflight));
  }

  std::unique_lock<std::timed_mutex> lock(hosted->mu, std::defer_lock);
  if (deadline == kNoDeadline) {
    lock.lock();
  } else if (!lock.try_lock_until(deadline)) {
    throw DeadlineExceededError("deadline exceeded waiting for session '" +
                                req.session + "'");
  }
  if (hosted->closed) {
    return Fail(StatusCode::kNoSuchSession,
                "session '" + req.session + "' is closed");
  }
  CheckDeadline("after acquiring the session");

  // A passivated stub: the Session lives only in its WAL. Closing needs no
  // reactivation (the file IS the state); everything else recovers it
  // transparently before proceeding.
  if (hosted->session == nullptr && req.op != ServerOp::kClose) {
    ReactivateLocked(hosted);  // throws on failure; the stub survives
  }

  Response resp;
  if (req.op == ServerOp::kClose) {
    hosted->closed = true;
    hosted->passivated.store(false, std::memory_order_release);
    {
      // Fenced against a concurrent retention pass fsyncing this WAL.
      std::lock_guard<std::mutex> retention(hosted->retention_mu);
      hosted->journal.reset();  // detaches the listener, releases the flock
    }
    hosted->session.reset();
    std::lock_guard<std::mutex> sessions_lock(sessions_mu_);
    sessions_.erase(req.session);
    lru_.Remove(req.session);
    resp.text = "closed";
    return resp;
  }

  Session& session = *hosted->session;
  switch (req.op) {
    case ServerOp::kApply: {
      if (req.kind < 0 || req.kind >= kNumTransformKinds) {
        return Fail(StatusCode::kBadRequest,
                    "transform kind out of range: " +
                        std::to_string(req.kind));
      }
      const TransformKind kind = TransformKindFromIndex(req.kind);
      const std::vector<Opportunity> ops = session.FindOpportunities(kind);
      if (req.op_index >= ops.size()) {
        return Fail(StatusCode::kPrecondition,
                    std::string(TransformKindName(kind)) + " has " +
                        std::to_string(ops.size()) +
                        " opportunities; index " +
                        std::to_string(req.op_index) + " does not exist");
      }
      resp.stamp = session.Apply(ops[req.op_index]);
      break;
    }
    case ServerOp::kTxn: {
      TxnDescriptor desc;
      try {
        desc = DecodeTxn(req.txn_body).desc;  // request digest is ignored
      } catch (const ProgramError& e) {
        return Fail(StatusCode::kBadRequest,
                    std::string("bad txn body: ") + e.what());
      }
      ReplayTxn(session, desc);
      resp.stamp = desc.result_stamp;
      break;
    }
    case ServerOp::kUndo: {
      if (req.stamps.size() != 1) {
        return Fail(StatusCode::kBadRequest, "undo takes exactly one stamp");
      }
      const UndoStats stats = session.Undo(req.stamps[0]);
      resp.value = static_cast<std::uint64_t>(stats.transforms_undone);
      break;
    }
    case ServerOp::kUndoSet: {
      std::vector<OrderStamp> undone;
      const UndoStats stats = session.UndoSet(req.stamps, &undone);
      resp.value = static_cast<std::uint64_t>(stats.transforms_undone);
      std::ostringstream os;
      for (std::size_t i = 0; i < undone.size(); ++i) {
        if (i != 0) os << " ";
        os << undone[i];
      }
      resp.text = os.str();
      break;
    }
    case ServerOp::kUndoLast:
      resp.stamp = session.UndoLast();
      break;
    case ServerOp::kCanUndo: {
      if (req.stamps.size() != 1) {
        return Fail(StatusCode::kBadRequest,
                    "canundo takes exactly one stamp");
      }
      std::string reason;
      resp.value = session.CanUndo(req.stamps[0], &reason) ? 1 : 0;
      resp.text = reason;
      break;
    }
    case ServerOp::kSource:
      resp.text = session.Source();
      break;
    case ServerOp::kHistory:
      resp.text = session.HistoryToString();
      break;
    case ServerOp::kSleep:
      std::this_thread::sleep_for(std::chrono::milliseconds(req.sleep_ms));
      break;
    default:
      return Fail(StatusCode::kBadRequest,
                  std::string("op '") + ServerOpName(req.op) +
                      "' is not valid here");
  }

  if (!ReadOnlyOp(req.op) && req.op != ServerOp::kClose) {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.commits;
  }
  // Any use — reads included — refreshes the session's recency and byte
  // estimate for the eviction policy.
  TouchLru(req.session, session);
  return resp;
}

// Publishes a still-empty Hosted entry for `name` under sessions_mu_,
// with its session mutex pre-locked by `init`, or returns false when the
// name is already taken. The entry reserves the name so two opens (or an
// open racing a recover) cannot both initialize it, while the expensive
// part — journal creation or recovery, which blocks on a full group-commit
// fsync or a replay — runs OUTSIDE sessions_mu_: FindSession takes that
// mutex on every request, and one slow open must not stall traffic to
// every other session. Requests that race the open find the entry and
// block on its mutex until initialization finishes (or fails and the entry
// is unpublished with closed=true).
bool PivotServer::PublishInitializing(
    const std::shared_ptr<Hosted>& hosted,
    std::unique_lock<std::timed_mutex>& init) {
  init = std::unique_lock<std::timed_mutex>(hosted->mu);
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (sessions_.count(hosted->name) != 0) return false;
  sessions_.emplace(hosted->name, hosted);
  return true;
}

void PivotServer::Unpublish(const std::shared_ptr<Hosted>& hosted) {
  hosted->closed = true;
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.erase(hosted->name);
}

Response PivotServer::DoOpen(const Request& req) {
  // Dispatch already rejected hostile names at admission.
  auto hosted = std::make_shared<Hosted>();
  hosted->name = req.session;
  // Parse before touching any shared state: a bad program never reserves
  // the name.
  hosted->session =
      std::make_unique<Session>(Parse(req.source), options_.session);
  std::unique_lock<std::timed_mutex> init;
  if (!PublishInitializing(hosted, init)) {
    return Fail(StatusCode::kSessionExists,
                "session '" + req.session + "' is already open");
  }
  const std::string path = SessionWalPath(req.session);
  try {
    if (::access(path.c_str(), F_OK) == 0) {
      Unpublish(hosted);
      return Fail(StatusCode::kSessionExists,
                  "journal " + path + " already exists; use recover");
    }
    auto journal = ServerJournal::Create(
        *hosted->session, req.session, path, *group_,
        options_.snapshot_interval,
        [this] { Degrade("session journal write fault"); });
    std::lock_guard<std::mutex> retention(hosted->retention_mu);
    hosted->journal = std::move(journal);
  } catch (...) {
    Unpublish(hosted);
    throw;
  }
  {
    // Freshly created: the WAL holds nothing the startup index does not
    // know about being unacked, so it never needs aligning against it.
    std::lock_guard<std::mutex> lock(sessions_mu_);
    reconciled_.insert(req.session);
  }
  TouchLru(req.session, *hosted->session);
  Response resp;
  resp.text = "open";
  return resp;
}

Response PivotServer::DoRecover(const Request& req) {
  auto hosted = std::make_shared<Hosted>();
  hosted->name = req.session;
  std::unique_lock<std::timed_mutex> init;
  if (!PublishInitializing(hosted, init)) {
    return Fail(StatusCode::kSessionExists,
                "session '" + req.session + "' is already open");
  }
  // Alignment against the startup group index happens once per name per
  // process: a session hosted earlier in this lifetime only ever appended
  // group-acked frames after that, which the (startup-frozen) index does
  // not record — re-aligning would mistake them for unacked leftovers.
  bool needs_reconcile;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    needs_reconcile = reconciled_.count(req.session) == 0;
  }
  Response resp;
  try {
    PIVOT_FAULT_POINT("server.recover.reconcile.pre");
    if (needs_reconcile) {
      ReconcileSessionWal(req.session);
      std::lock_guard<std::mutex> lock(sessions_mu_);
      reconciled_.insert(req.session);
    }
    const std::string path = SessionWalPath(req.session);
    RecoverResult recovered = RecoverSession(path);
    hosted->session = std::move(recovered.session);
    auto journal = ServerJournal::Attach(
        *hosted->session, req.session, path, *group_,
        options_.snapshot_interval,
        [this] { Degrade("session journal write fault"); });
    {
      std::lock_guard<std::mutex> retention(hosted->retention_mu);
      hosted->journal = std::move(journal);
    }
    resp.value = recovered.report.txns_replayed;
    resp.text = recovered.report.ToString();
  } catch (...) {
    Unpublish(hosted);
    throw;
  }
  TouchLru(req.session, *hosted->session);
  return resp;
}

// The gwal retention pass. Ordering is the whole safety story: each open
// session's WAL is fsynced FIRST, and only the txn count that fsync
// provably covered is offered as the session's watermark. The group log
// then drops envelopes up to the watermark: every dropped envelope has a
// durable copy in its session file, so a crash at any later point still
// recovers every acknowledged commit. The pass deliberately does NOT take
// session locks — committers hold theirs across the whole group-commit
// wait, so on a saturated server a blocking acquire starves the pass
// until the load stops (exactly when retention no longer matters).
// retention_mu only fences journal creation/destruction; the fsync itself
// is safe against a concurrent append (see SyncWalForRetention).
Response PivotServer::DoCompactGwal() {
  std::vector<std::shared_ptr<Hosted>> hosted_snapshot;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    hosted_snapshot.reserve(sessions_.size());
    for (const auto& [name, hosted] : sessions_) hosted_snapshot.push_back(hosted);
  }
  std::map<std::string, std::uint64_t> watermarks;
  std::size_t skipped = 0;
  for (const auto& hosted : hosted_snapshot) {
    std::lock_guard<std::mutex> lock(hosted->retention_mu);
    if (hosted->journal == nullptr) {
      // A passivated stub has no journal, but its eviction fsync already
      // made the acked prefix durable in the session file — the stored
      // watermark keeps vouching for its group-log envelopes. (A stub
      // mid-close or mid-initialization is not passivated and vouches for
      // nothing.)
      if (hosted->passivated.load(std::memory_order_acquire)) {
        watermarks[hosted->name] =
            hosted->acked_watermark.load(std::memory_order_acquire);
      }
      continue;
    }
    try {
      watermarks[hosted->name] = hosted->journal->SyncWalForRetention();
    } catch (const FaultInjectedError&) {
      throw;  // crash harness
    } catch (...) {
      // This session's WAL could not be made durable; its envelopes stay.
      ++skipped;
    }
  }
  // Sessions present in the group log but not open get no watermark:
  // without an fsync of their file nothing vouches for a durable copy, so
  // their envelopes are retained.
  group_->Compact(std::move(watermarks));
  Response resp;
  resp.value = group_->bytes();
  std::ostringstream os;
  os << "gwal " << group_->bytes() << " bytes after compaction";
  if (skipped > 0) os << " (" << skipped << " sessions skipped)";
  resp.text = os.str();
  return resp;
}

void PivotServer::MaybeAutoCompact() {
  if (options_.gwal_compact_bytes == 0) return;
  if (group_->bytes() < options_.gwal_compact_bytes) return;
  if (mode() != ServerMode::kServing) return;
  // One pass at a time; concurrent requests simply skip (the next commit
  // past the threshold retries).
  bool expected = false;
  if (!gwal_compacting_.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
    return;
  }
  try {
    DoCompactGwal();
  } catch (const FaultInjectedError&) {
    gwal_compacting_.store(false, std::memory_order_release);
    throw;  // the crash harness owns this one (Execute flips kCrashed)
  } catch (...) {
    // Opportunistic: a failed pass (draining, degraded, write fault on the
    // tmp file) leaves the log valid and merely longer than we would like.
  }
  gwal_compacting_.store(false, std::memory_order_release);
}

// Brings a session WAL in line with the group log as scanned at server
// start: the file's txn frames are aligned against the acked sequence BY
// CONTENT, every acked frame missing from the (never individually
// fsynced) session file is re-appended byte-identically, and any frame
// past the matching prefix is cut. Such a frame is an unacknowledged
// leftover — a txn appended just before a crash whose group fsync never
// ran — and dropping it is what keeps the session WAL an exact replica of
// the acked prefix. Keeping it (the old "bonus" policy) baked unacked
// state underneath later acked commits; after a second crash that lost
// the unsynced session-file tail, a count-based alignment then started
// the re-append at the wrong group index, silently dropping an
// acknowledged commit.
void PivotServer::ReconcileSessionWal(const std::string& name) {
  const auto indexed = group_index_.find(name);
  const std::vector<GroupFrame> no_entries;
  const std::vector<GroupFrame>& entries =
      indexed == group_index_.end() ? no_entries : indexed->second;
  // Txn envelopes reclaimed by gwal compaction: the session file's first
  // `dropped` txn frames have no group counterpart left to compare
  // against, but compaction verified (fsync before drop) that they are
  // durable in the session file — they are accepted as the acked prefix.
  const auto dropped_it = group_dropped_.find(name);
  const std::uint64_t dropped =
      dropped_it == group_dropped_.end() ? 0 : dropped_it->second;

  const std::string path = SessionWalPath(name);
  const bool exists = ::access(path.c_str(), F_OK) == 0;
  if (!exists && entries.empty() && dropped == 0) {
    throw ProgramError("no journal for session '" + name + "'");
  }

  // Is the existing file usable (valid header + genesis)?
  bool usable = false;
  WalScanResult scan;
  if (exists) {
    scan = ScanWal(path);
    usable = scan.header_ok && scan.version <= kJournalFormatVersion &&
             !scan.frames.empty() &&
             scan.frames[0].type == FrameType::kGenesis;
  }

  if (!usable) {
    // Crash before the genesis landed in the session file (or the file is
    // gone): rebuild it wholesale from the acked frames.
    if (dropped > 0) {
      // Compaction only ever drops envelopes that are durable in the
      // session file; the file being unusable now means that durable copy
      // was destroyed afterwards — outside the crash contract, and the
      // dropped frames are not reconstructible from the group log.
      throw ProgramError(
          "session '" + name +
          "' has no usable journal, and the group log's copy of its first " +
          std::to_string(dropped) + " transactions was reclaimed by "
          "compaction after they were durable there");
    }
    if (entries.empty() || entries[0].type != FrameType::kGenesis) {
      throw ProgramError("session '" + name +
                         "' has no usable journal and no acked genesis in "
                         "the group log");
    }
    FileLock lock = FileLock::Acquire(path);
    WalWriter writer = WalWriter::Create(path);
    for (const GroupFrame& entry : entries) {
      writer.AppendFrame(entry.type, entry.body, /*fsync=*/false, "server.swal.txn");
    }
    writer.Sync();
    return;
  }

  if (scan.valid_bytes < scan.file_bytes) {
    TruncateWal(path, scan.valid_bytes);
  }

  std::vector<const GroupFrame*> gwal_txns;
  for (const GroupFrame& entry : entries) {
    if (entry.type == FrameType::kTxn) gwal_txns.push_back(&entry);
  }

  // Txn frames dropped from beneath the FILE by passivation compaction,
  // recorded in the snapshots' base clause: the file's t-th txn frame
  // (0-based) is transaction sbase + t of the session's absolute history.
  // Compaction only ever drops frames covered by a durable snapshot, so
  // the missing prefix needs no content check — the snapshot IS its
  // digest-verified summary.
  std::uint64_t sbase = 0;
  for (const WalFrame& frame : scan.frames) {
    if (frame.type == FrameType::kSnapshot) {
      const std::uint64_t base = DecodeSnapshotBody(frame.body).base;
      if (base > sbase) sbase = base;
    }
  }

  // Longest prefix of the session file whose txn frames byte-match the
  // acked sequence, aligned by ABSOLUTE transaction index: both the gwal
  // (retention marks, `dropped`) and the session file (snapshot bases,
  // `sbase`) may have reclaimed a prefix, and the two counts move
  // independently. Snapshot frames interleave freely — a snapshot is
  // written only after its txns were acked, so one encountered before any
  // divergence describes matched state and stays. A file txn whose
  // absolute index precedes `dropped` has no group counterpart left
  // (reclaimed after compaction verified it durable here) and is accepted
  // without a content check; from `dropped` on, absolute transaction a
  // compares against gwal_txns[a - dropped]. The first txn that disagrees
  // with (or overshoots) the acked sequence starts the unacknowledged
  // tail.
  std::uint64_t matched = 0;  // session-file txn frames accepted so far
  std::uint64_t keep_bytes = sizeof kWalMagic + 4;  // file header
  bool diverged = false;
  for (const WalFrame& frame : scan.frames) {
    if (frame.type == FrameType::kTxn) {
      const std::uint64_t abs = sbase + matched;
      if (abs >= dropped) {
        const std::uint64_t idx = abs - dropped;
        if (idx >= gwal_txns.size() ||
            frame.body != gwal_txns[idx]->body) {
          diverged = true;
          break;
        }
      }
      ++matched;
    }
    keep_bytes = frame.end_offset;
  }
  if (sbase + matched < dropped) {
    // The file accounts for fewer transactions (compacted-away plus
    // present) than gwal compaction verified durable in it: a durable
    // prefix was destroyed, and the group log no longer has those frames
    // to rebuild from.
    throw ProgramError(
        "session '" + name + "' journal accounts for " +
        std::to_string(sbase + matched) +
        " transactions but gwal compaction recorded " +
        std::to_string(dropped) + " durable ones; the reclaimed frames "
        "cannot be rebuilt from the group log");
  }
  if (!diverged && sbase + matched == dropped + gwal_txns.size()) {
    return;  // exact replica of the acked history
  }

  FileLock lock = FileLock::Acquire(path);
  if (diverged) TruncateWal(path, keep_bytes);
  WalWriter writer = WalWriter::Append(path);
  for (std::size_t i = sbase + matched - dropped; i < gwal_txns.size(); ++i) {
    writer.AppendFrame(FrameType::kTxn, gwal_txns[i]->body, /*fsync=*/false,
                       "server.swal.txn");
  }
  writer.Sync();
}

// ---------------------------------------------------------------------------
// Session lifecycle: passivation, reactivation, budget enforcement
// ---------------------------------------------------------------------------

// The eviction sequence, under hosted->mu:
//   1. final durable snapshot (or bare fsync) — the file becomes the sole
//      authority for the session's state;
//   2. publish the stub (acked watermark first, then the passivated flag):
//      from here the gwal retention pass vouches for the session's
//      envelopes via the stub instead of the live journal;
//   3. release the journal (under retention_mu, fencing a concurrent
//      retention pass) and the Session;
//   4. optionally rewrite the WAL down to genesis + snapshot + tail.
// A crash between any two steps is covered: the snapshot of step 1 is
// durable before anything is released, and the compaction of step 4 is
// atomic (tmp + rename) with stale tmps cleaned at reactivation.
bool PivotServer::PassivateLocked(const std::shared_ptr<Hosted>& hosted) {
  PIVOT_FAULT_POINT("server.evict.pre");
  std::uint64_t watermark = 0;
  try {
    watermark = hosted->journal->PassivateToDisk();
  } catch (const FaultInjectedError&) {
    throw;  // crash harness (callers flip kCrashed)
  } catch (const ServerWriteFaultError&) {
    // The WAL could not be made durable, so the Session must stay
    // resident — it is the only correct copy. The disk is failing;
    // degrade the server rather than retrying evictions forever.
    Degrade("passivation write fault");
    return false;
  }
  PIVOT_FAULT_POINT("server.evict.release.pre");
  // Watermark before flag: a retention pass that observes passivated==true
  // must never read a stale watermark of 0 and offer it for this session
  // (Compact treats watermarks cumulatively, so 0 would merely retain
  // everything — but the stub should vouch for exactly what the fsync
  // covered).
  hosted->acked_watermark.store(watermark, std::memory_order_release);
  hosted->passivated.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> retention(hosted->retention_mu);
    hosted->journal.reset();  // detaches the listener, releases the flock
  }
  hosted->session.reset();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    lru_.Remove(hosted->name);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.passivations;
  }
  if (options_.lifecycle.compact_on_passivate) {
    try {
      // The journal's flock was just released; re-acquire it for the
      // rewrite so no other process can race the rename.
      FileLock lock = FileLock::Acquire(SessionWalPath(hosted->name));
      CompactSessionWalFile(SessionWalPath(hosted->name));
    } catch (const FaultInjectedError&) {
      throw;  // crash harness
    } catch (...) {
      // Compaction is an optimization — the uncompacted file is valid and
      // reactivation does not depend on it.
    }
  }
  PIVOT_FAULT_POINT("server.evict.stub.post");
  return true;
}

// In-process reactivation never re-reconciles against the startup group
// index: every frame this process appended after startup was group-acked
// before OnCommit returned (and eviction rolls rejected frames off), so
// the file holds exactly the acked prefix — re-aligning against the
// startup-frozen index would mistake post-startup commits for unacked
// leftovers.
void PivotServer::ReactivateLocked(const std::shared_ptr<Hosted>& hosted) {
  PIVOT_FAULT_POINT("server.evict.reactivate.pre");
  const std::string path = SessionWalPath(hosted->name);
  RecoverResult recovered = RecoverSession(path);  // throws on failure
  hosted->session = std::move(recovered.session);
  try {
    auto journal = ServerJournal::Attach(
        *hosted->session, hosted->name, path, *group_,
        options_.snapshot_interval,
        [this] { Degrade("session journal write fault"); });
    std::lock_guard<std::mutex> retention(hosted->retention_mu);
    hosted->journal = std::move(journal);
  } catch (...) {
    // Back to a stub: the watermark is still valid (nothing was written)
    // and the next request retries the recovery.
    hosted->session.reset();
    throw;
  }
  hosted->passivated.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.reactivations;
  }
  TouchLru(hosted->name, *hosted->session);
  PIVOT_FAULT_POINT("server.evict.reactivate.post");
}

void PivotServer::TouchLru(const std::string& name, Session& session) {
  const std::uint64_t bytes = EstimateSessionBytes(session);
  std::lock_guard<std::mutex> lock(sessions_mu_);
  lru_.Touch(name, bytes, SessionLru::Clock::now());
}

void PivotServer::MaybePassivate() {
  const LifecycleOptions& lc = options_.lifecycle;
  if (lc.memory_budget_bytes == 0 && lc.max_resident == 0) return;
  if (mode() != ServerMode::kServing) return;
  // One enforcement pass at a time; concurrent requests simply skip (the
  // next request past the budget retries).
  bool expected = false;
  if (!passivating_.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
    return;
  }
  struct Reset {
    std::atomic<bool>* flag;
    ~Reset() { flag->store(false, std::memory_order_release); }
  } reset{&passivating_};
  for (;;) {
    std::vector<std::string> victims;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      const bool over_bytes = lc.memory_budget_bytes > 0 &&
                              lru_.total_bytes() > lc.memory_budget_bytes;
      const bool over_count =
          lc.max_resident > 0 &&
          lru_.size() > static_cast<std::size_t>(lc.max_resident);
      if (!over_bytes && !over_count) return;
      victims = lru_.Victims(SessionLru::Clock::time_point::max(), 8);
    }
    if (victims.empty()) return;
    bool progressed = false;
    for (const std::string& name : victims) {
      std::shared_ptr<Hosted> hosted = FindSession(name);
      if (hosted == nullptr) {
        // Closed since the candidate list was taken; kClose already
        // removed it from the LRU.
        progressed = true;
        continue;
      }
      // try_lock, never block: a busy session is by definition not a good
      // eviction victim, and a committer parked on the group ticket holds
      // its lock for the whole fsync wait.
      std::unique_lock<std::timed_mutex> lock(hosted->mu, std::try_to_lock);
      if (!lock.owns_lock()) continue;
      if (hosted->closed || hosted->session == nullptr) {
        std::lock_guard<std::mutex> sessions_lock(sessions_mu_);
        lru_.Remove(name);
        progressed = true;
        continue;
      }
      if (!PassivateLocked(hosted)) return;  // degraded; stop evicting
      progressed = true;
      // Re-check the budget before taking another victim: the batch was
      // sized for the worst case, not a license to drain it past the cap.
      break;
    }
    if (!progressed) return;  // every candidate busy; next request retries
  }
}

void PivotServer::ReaperLoop() {
  const auto interval = std::chrono::milliseconds(
      options_.lifecycle.reaper_interval_ms > 0
          ? options_.lifecycle.reaper_interval_ms
          : 100);
  std::unique_lock<std::mutex> lock(reaper_mu_);
  while (!reaper_stop_) {
    reaper_cv_.wait_for(lock, interval, [this] { return reaper_stop_; });
    if (reaper_stop_) break;
    lock.unlock();
    try {
      if (mode() == ServerMode::kServing) {
        const auto cutoff =
            SessionLru::Clock::now() -
            std::chrono::milliseconds(options_.lifecycle.idle_passivate_ms);
        std::vector<std::string> victims;
        {
          std::lock_guard<std::mutex> sessions_lock(sessions_mu_);
          victims = lru_.Victims(cutoff, 16);
        }
        for (const std::string& name : victims) {
          std::shared_ptr<Hosted> hosted = FindSession(name);
          if (hosted == nullptr) continue;
          std::unique_lock<std::timed_mutex> session_lock(hosted->mu,
                                                          std::try_to_lock);
          if (!session_lock.owns_lock()) continue;  // busy = not idle
          if (hosted->closed || hosted->session == nullptr) {
            std::lock_guard<std::mutex> sessions_lock(sessions_mu_);
            lru_.Remove(name);
            continue;
          }
          if (!PassivateLocked(hosted)) break;  // degraded; stop sweeping
        }
      }
    } catch (const FaultInjectedError&) {
      // Crash harness fired on the reaper thread: flip the server into
      // kCrashed (as Execute would) and let the thread die — the harness
      // restarts the whole process.
      mode_.store(ServerMode::kCrashed, std::memory_order_release);
      lock.lock();
      break;
    }
    lock.lock();
  }
}

void PivotServer::StopReaper() {
  {
    std::lock_guard<std::mutex> lock(reaper_mu_);
    reaper_stop_ = true;
  }
  reaper_cv_.notify_all();
  if (reaper_.joinable()) reaper_.join();
}

void PivotServer::ServeConnection(int fd) {
  ServeConnection(fd, ConnectionLimits{});
}

void PivotServer::ServeConnection(int fd, const ConnectionLimits& limits) {
  std::string payload;
  for (;;) {
    try {
      if (!ReadMessage(fd, &payload, limits.idle_timeout_ms,
                       limits.frame_timeout_ms)) {
        break;  // clean EOF
      }
    } catch (const ReadTimeoutError&) {
      // An idle or slowloris peer: cut the connection and account for it.
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.read_timeouts;
      break;
    } catch (const ProgramError&) {
      break;  // torn message / transport garbage: drop the connection
    }
    Response resp;
    bool decoded = false;
    Request req;
    try {
      req = DecodeRequest(payload);
      decoded = true;
    } catch (const ProgramError& e) {
      resp = Fail(StatusCode::kBadRequest, e.what());
    }
    if (decoded) resp = Execute(req);  // FaultInjectedError propagates
    try {
      WriteMessage(fd, EncodeResponse(resp));
    } catch (const ProgramError&) {
      // The client went away mid-response. Its in-session transaction (if
      // any) already committed or rolled back atomically server-side;
      // nothing to clean up beyond this connection.
      break;
    }
  }
}

void PivotServer::Drain() {
  // Quiesce the idle reaper first: a passivation mid-drain would race the
  // group log's shutdown for no benefit.
  StopReaper();
  ServerMode expected = ServerMode::kServing;
  if (!mode_.compare_exchange_strong(expected, ServerMode::kDraining,
                                     std::memory_order_acq_rel)) {
    expected = ServerMode::kDegraded;
    if (!mode_.compare_exchange_strong(expected, ServerMode::kDraining,
                                       std::memory_order_acq_rel)) {
      return;  // already draining/stopped/crashed
    }
  }
  // New requests now bounce with kShuttingDown; wait out the in-flight
  // ones (each completes or fails on its own deadline).
  while (inflight_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  group_->Drain();
  mode_.store(ServerMode::kStopped, std::memory_order_release);
}

}  // namespace pivot
