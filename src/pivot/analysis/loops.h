// Loop structure analysis.
//
// Collects every `do` statement with its nesting relationships, constant
// bound/trip-count information, tight-nesting and adjacency predicates
// (preconditions of loop interchange, strip mining, unrolling and fusion),
// and the loop-invariance test behind invariant code motion.
#ifndef PIVOT_ANALYSIS_LOOPS_H_
#define PIVOT_ANALYSIS_LOOPS_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "pivot/ir/program.h"

namespace pivot {

struct LoopInfo {
  Stmt* loop = nullptr;
  Stmt* parent_loop = nullptr;  // innermost enclosing loop, or null
  int depth = 1;                // 1 = outermost

  bool const_bounds = false;  // lo/hi/(step) are integer constants
  long lo = 0;
  long hi = 0;
  long step = 1;

  // Trip count when const_bounds, else -1.
  long TripCount() const;
  // Provably executes at least one iteration.
  bool DefinitelyExecutes() const { return TripCount() > 0; }
};

class LoopTree {
 public:
  explicit LoopTree(Program& program);

  const std::vector<LoopInfo>& loops() const { return loops_; }
  const LoopInfo* InfoOf(const Stmt& loop) const;  // null if not a loop

  // Enclosing loops of `stmt`, outermost first (excluding `stmt` itself).
  std::vector<Stmt*> LoopsEnclosing(const Stmt& stmt) const;

  // Common enclosing loops of two statements, outermost first.
  std::vector<Stmt*> CommonLoops(const Stmt& a, const Stmt& b) const;

 private:
  std::vector<LoopInfo> loops_;
  std::unordered_map<StmtId, int> index_;
};

// `outer` is a loop whose body is exactly one statement, itself a loop:
// the "Tight Loops (L1, L2)" pre-pattern of loop interchange.
bool IsTightlyNested(const Stmt& outer);

// Two loops that are consecutive siblings in the same body (fusion's
// pre-pattern), in that order. `program` resolves the shared body list
// (the loops may be at the top level).
bool AreAdjacentLoops(Program& program, const Stmt& first,
                      const Stmt& second);

// Every name strongly or weakly defined anywhere inside the loop body,
// including nested loop variables (but not `loop`'s own variable).
std::unordered_set<std::string> NamesDefinedIn(const Stmt& loop);

// The invariant-code-motion candidate test: `stmt` is a scalar assignment
// directly in `loop`'s body whose RHS reads nothing defined in the loop
// (including loop variables), whose target is defined exactly once in the
// loop and never read in the loop body before `stmt`, and whose hoisting
// cannot change the number of executions observably (the loop provably
// executes, per `info`).
bool IsLoopInvariant(const Stmt& stmt, const Stmt& loop,
                     const LoopInfo& info);

}  // namespace pivot

#endif  // PIVOT_ANALYSIS_LOOPS_H_
