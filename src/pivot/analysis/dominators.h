// Dominator computation on the CFG.
//
// Used by CSE and the propagation passes: a source statement may feed a
// use only if it executes on every path to the use. Implemented with the
// Cooper–Harvey–Kennedy iterative algorithm over reverse post-order.
#ifndef PIVOT_ANALYSIS_DOMINATORS_H_
#define PIVOT_ANALYSIS_DOMINATORS_H_

#include <vector>

#include "pivot/analysis/cfg.h"

namespace pivot {

class Dominators {
 public:
  explicit Dominators(const Cfg& cfg);

  // Immediate dominator node index, or -1 for the entry / unreachable.
  int Idom(int node) const;

  // True if `a` dominates `b` (reflexive).
  bool Dominates(int a, int b) const;

  // Statement-level convenience: does `a` dominate `b`?
  bool Dominates(const Stmt& a, const Stmt& b) const;

 private:
  const Cfg& cfg_;
  std::vector<int> idom_;
  std::vector<int> rpo_index_;  // node -> position in reverse post-order
};

}  // namespace pivot

#endif  // PIVOT_ANALYSIS_DOMINATORS_H_
