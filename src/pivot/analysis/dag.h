// Per-basic-block DAG (low level of the two-level representation).
//
// Classic value-numbering DAG à la Aho–Sethi–Ullman: leaves are the
// initial values of variables and constants; interior nodes are operations;
// each node carries the set of names currently holding its value. The DAG
// exposes the within-block common subexpressions that the low-level half
// of the paper's representation tracks, and its dump is the ADAG view the
// Figure-1 benchmark renders.
#ifndef PIVOT_ANALYSIS_DAG_H_
#define PIVOT_ANALYSIS_DAG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "pivot/ir/program.h"

namespace pivot {

// A maximal run of consecutive simple statements (assign/read/write) in one
// body list.
struct BasicBlock {
  std::vector<Stmt*> stmts;
};

// All basic blocks of the program, in layout order.
std::vector<BasicBlock> CollectBasicBlocks(Program& program);

struct DagNode {
  enum class Kind { kLeafVar, kLeafConst, kOp };
  Kind kind = Kind::kLeafVar;
  std::string var;          // kLeafVar: initial value of this name
  double const_value = 0;   // kLeafConst
  BinOp op = BinOp::kAdd;   // kOp (unary minus modeled as 0 - x)
  std::vector<int> kids;
  std::vector<std::string> labels;  // names currently valued here
};

class BlockDag {
 public:
  explicit BlockDag(const BasicBlock& block);

  const std::vector<DagNode>& nodes() const { return nodes_; }

  // Node computed by a statement's RHS, or -1 (non-assign statements).
  int ValueOf(const Stmt& stmt) const;

  // Statements whose RHS mapped to an already existing op node: the
  // within-block common subexpressions.
  const std::vector<Stmt*>& reused() const { return reused_; }

  std::string ToString() const;

 private:
  int Leaf(const std::string& var);
  int Const(double value);
  int Build(const Expr& e);
  int FindOrAddOp(BinOp op, std::vector<int> kids);

  std::vector<DagNode> nodes_;
  std::unordered_map<std::string, int> current_;  // name -> node
  std::unordered_map<StmtId, int> value_of_;
  std::vector<Stmt*> reused_;
};

// Every basic block of the program with its DAG, bundled for the analysis
// cache. DAGs are held by shared_ptr so an incremental refresh can carry
// clean blocks' DAGs over unchanged and rebuild only the dirty blocks.
struct BlockDags {
  std::vector<BasicBlock> blocks;
  std::vector<std::shared_ptr<const BlockDag>> dags;  // aligned with blocks
  std::unordered_map<StmtId, int> block_of;           // stmt -> block index

  // The DAG of the block containing `stmt`, or null for statements outside
  // any basic block (loop / if headers).
  const BlockDag* DagOf(const Stmt& stmt) const;
};

BlockDags BuildBlockDags(Program& program);

// True when the two blocks cover exactly the same statements in the same
// order — the reuse precondition for carrying a DAG across epochs.
bool SameBlockStmts(const BasicBlock& a, const BasicBlock& b);

}  // namespace pivot

#endif  // PIVOT_ANALYSIS_DAG_H_
