// Program Dependence Graph (high level of the two-level representation).
//
// Nodes are statements, predicates (do / if headers) and *region nodes*
// grouping the statements control-dependent on the same condition: the
// program root, each loop body, and each branch of an if. The control
// dependence tree for structured Pf code is the nesting structure itself.
// Data-dependence edges (depend.h) hang between statement nodes; the least
// common region (LCR) of a dependence's endpoints is where summary.h
// annotates it, exactly as the paper's Figure 3 prescribes.
#ifndef PIVOT_ANALYSIS_PDG_H_
#define PIVOT_ANALYSIS_PDG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "pivot/analysis/depend.h"
#include "pivot/ir/program.h"

namespace pivot {

struct PdgNode {
  enum class Kind { kRegion, kStmt };
  Kind kind = Kind::kStmt;
  Stmt* stmt = nullptr;      // the statement, or the region's owner (null
                             // for the root region)
  BodyKind body = BodyKind::kMain;  // which body a region represents
  int parent = -1;           // control-dependence tree parent
  std::vector<int> children;
  std::string label;         // "R0", "s12: A(j) = ..." for dumps
};

class Pdg {
 public:
  Pdg(Program& program, std::vector<Dependence> deps);

  const std::vector<PdgNode>& nodes() const { return nodes_; }
  int root() const { return root_; }
  const std::vector<Dependence>& deps() const { return deps_; }

  // The node of a statement; the region node directly containing it.
  int NodeOf(const Stmt& stmt) const;
  int RegionOf(const Stmt& stmt) const;

  // The region node for (`owner`,`body`), e.g. a loop's body region.
  int RegionFor(const Stmt& owner, BodyKind body) const;

  // Least common region: the nearest region node that is a control
  // ancestor of both statements (paper §4.4).
  int Lcr(const Stmt& a, const Stmt& b) const;

  // True if `node` lies in the control-dependence subtree rooted at
  // `region`.
  bool InSubtree(int region, int node) const;

  std::string ToString() const;

 private:
  int AddNode(PdgNode node);
  void BuildBody(const std::vector<StmtPtr>& body, int region);

  std::vector<PdgNode> nodes_;
  int root_ = -1;
  std::vector<Dependence> deps_;
  std::unordered_map<StmtId, int> stmt_node_;
  // Region of a (stmt,body) pair: key = stmt id * 2 + (body == kElse).
  std::unordered_map<std::uint64_t, int> region_node_;
};

}  // namespace pivot

#endif  // PIVOT_ANALYSIS_PDG_H_
