#include "pivot/analysis/loops.h"

#include <algorithm>

#include "pivot/support/diagnostics.h"

namespace pivot {

long LoopInfo::TripCount() const {
  if (!const_bounds || step == 0) return -1;
  const long span = step > 0 ? hi - lo : lo - hi;
  const long mag = step > 0 ? step : -step;
  if (span < 0) return 0;
  return span / mag + 1;
}

LoopTree::LoopTree(Program& program) {
  program.ForEachAttached([this](Stmt& s) {
    if (s.kind != StmtKind::kDo) return;
    LoopInfo info;
    info.loop = &s;
    for (Stmt* p = s.parent; p != nullptr; p = p->parent) {
      if (p->kind == StmtKind::kDo) {
        if (info.parent_loop == nullptr) info.parent_loop = p;
        ++info.depth;
      }
    }
    info.const_bounds = s.lo->kind == ExprKind::kIntConst &&
                        s.hi->kind == ExprKind::kIntConst &&
                        (s.step == nullptr ||
                         s.step->kind == ExprKind::kIntConst);
    if (info.const_bounds) {
      info.lo = s.lo->ival;
      info.hi = s.hi->ival;
      info.step = s.step != nullptr ? s.step->ival : 1;
    }
    index_[s.id] = static_cast<int>(loops_.size());
    loops_.push_back(info);
  });
}

const LoopInfo* LoopTree::InfoOf(const Stmt& loop) const {
  auto it = index_.find(loop.id);
  return it == index_.end() ? nullptr
                            : &loops_[static_cast<std::size_t>(it->second)];
}

std::vector<Stmt*> LoopTree::LoopsEnclosing(const Stmt& stmt) const {
  std::vector<Stmt*> result;
  for (Stmt* p = stmt.parent; p != nullptr; p = p->parent) {
    if (p->kind == StmtKind::kDo) result.push_back(p);
  }
  std::reverse(result.begin(), result.end());
  return result;
}

std::vector<Stmt*> LoopTree::CommonLoops(const Stmt& a, const Stmt& b) const {
  const std::vector<Stmt*> la = LoopsEnclosing(a);
  const std::vector<Stmt*> lb = LoopsEnclosing(b);
  std::vector<Stmt*> common;
  for (std::size_t i = 0; i < la.size() && i < lb.size(); ++i) {
    if (la[i] != lb[i]) break;
    common.push_back(la[i]);
  }
  return common;
}

bool IsTightlyNested(const Stmt& outer) {
  return outer.kind == StmtKind::kDo && outer.body.size() == 1 &&
         outer.body[0]->kind == StmtKind::kDo;
}

bool AreAdjacentLoops(Program& program, const Stmt& first,
                      const Stmt& second) {
  if (first.kind != StmtKind::kDo || second.kind != StmtKind::kDo) {
    return false;
  }
  if (!first.attached || !second.attached) return false;
  if (first.parent != second.parent ||
      first.parent_body != second.parent_body) {
    return false;
  }
  // Adjacency: `second` immediately follows `first` in the shared body.
  const std::vector<StmtPtr>& list =
      program.BodyListOf(first.parent, first.parent_body);
  for (std::size_t i = 0; i + 1 < list.size(); ++i) {
    if (list[i].get() == &first) return list[i + 1].get() == &second;
  }
  return false;
}

std::unordered_set<std::string> NamesDefinedIn(const Stmt& loop) {
  std::unordered_set<std::string> defined;
  PIVOT_CHECK(loop.kind == StmtKind::kDo);
  for (const auto& kid : loop.body) {
    ForEachStmt(static_cast<const Stmt&>(*kid), [&defined](const Stmt& s) {
      const std::string name = DefinedName(s);
      if (!name.empty()) defined.insert(name);
      if (s.kind == StmtKind::kDo) defined.insert(s.loop_var);
    });
  }
  return defined;
}

bool IsLoopInvariant(const Stmt& stmt, const Stmt& loop,
                     const LoopInfo& info) {
  if (stmt.kind != StmtKind::kAssign || stmt.lhs == nullptr) return false;
  // Speculation safety: hoisting executes the statement once before the
  // loop's first iteration, ahead of any I/O (or other possible trap) the
  // body performs before it. A fault-capable RHS or target subscript would
  // then trap earlier than the original program, changing the observable
  // trace even though the value computed is invariant.
  if (StmtCanTrap(stmt)) return false;
  // Array-element targets qualify when the subscripts are invariant too
  // (the paper's example hoists "A(j) = B(j) + 1" out of the i-loop); the
  // whole array is then treated as the target name, conservatively.
  if (stmt.lhs->kind == ExprKind::kArrayRef) {
    const std::unordered_set<std::string> defined_in = NamesDefinedIn(loop);
    for (const auto& sub : stmt.lhs->kids) {
      std::vector<std::string> sub_reads;
      CollectVarReads(*sub, sub_reads);
      for (const auto& r : sub_reads) {
        if (r == loop.loop_var || defined_in.count(r) != 0) return false;
      }
    }
  }
  // Directly in the loop body (not nested under an if or inner loop, where
  // hoisting could change how often — or whether — it executes).
  if (stmt.parent != &loop || stmt.parent_body != BodyKind::kMain) {
    return false;
  }
  // Hoisting executes the statement exactly once; the loop must provably
  // have executed it at least once for the final store to be equivalent.
  if (!info.DefinitelyExecutes()) return false;

  const std::unordered_set<std::string> defined = NamesDefinedIn(loop);
  // RHS must not read anything the loop (or the loop variable) defines.
  std::vector<std::string> reads;
  CollectVarReads(*stmt.rhs, reads);
  for (const auto& r : reads) {
    if (r == loop.loop_var || defined.count(r) != 0) return false;
  }

  // The target: single definition in the loop (this statement), and no use
  // of the target before `stmt` in the body — otherwise the first iteration
  // would observe the hoisted value instead of the pre-loop one.
  const std::string& target = stmt.lhs->name;
  if (target == loop.loop_var) return false;
  bool before = true;
  bool ok = true;
  for (const auto& kid : loop.body) {
    ForEachStmt(static_cast<const Stmt&>(*kid), [&](const Stmt& s) {
      if (&s == &stmt) {
        before = false;
        return;
      }
      if (DefinedName(s) == target) ok = false;
      if (s.kind == StmtKind::kDo && s.loop_var == target) ok = false;
      if (before) {
        std::vector<std::string> uses;
        CollectReadNames(s, uses);
        for (const auto& u : uses) {
          if (u == target) ok = false;
        }
      }
    });
  }
  return ok;
}

}  // namespace pivot
