#include "pivot/analysis/analyses.h"

#include "pivot/support/fault_injector.h"

namespace pivot {

bool AnalysisCache::Stale() {
  if (cached_epoch_ == program_.epoch()) return false;
  // A from-scratch re-derivation is about to start; transactional callers
  // must survive a failure here (the caches are already consistent — lazy
  // rebuild just restarts on the next query).
  PIVOT_FAULT_POINT("analysis.rebuild.pre");
  Invalidate();
  cached_epoch_ = program_.epoch();
  ++rebuilds_;
  return true;
}

void AnalysisCache::Invalidate() {
  // Dependents first (they hold references into their prerequisites).
  summaries_.reset();
  pdg_.reset();
  deps_.reset();
  loops_.reset();
  defuse_.reset();
  avail_.reset();
  liveness_.reset();
  reaching_.reset();
  facts_.reset();
  doms_.reset();
  cfg_.reset();
  flat_.reset();
  cached_epoch_ = 0;
}

const FlatProgram& AnalysisCache::flat() {
  Stale();
  if (!flat_) flat_.emplace(Flatten(program_));
  return *flat_;
}

const Cfg& AnalysisCache::cfg() {
  Stale();
  if (!cfg_) cfg_.emplace(BuildCfg(program_));
  return *cfg_;
}

const Dominators& AnalysisCache::doms() {
  Stale();
  if (!doms_) doms_.emplace(cfg());
  return *doms_;
}

const ProgramFacts& AnalysisCache::facts() {
  Stale();
  if (!facts_) facts_.emplace(ComputeFacts(cfg()));
  return *facts_;
}

const ReachingDefs& AnalysisCache::reaching() {
  Stale();
  if (!reaching_) {
    const Cfg& c = cfg();
    reaching_.emplace(c, facts());
  }
  return *reaching_;
}

const Liveness& AnalysisCache::liveness() {
  Stale();
  if (!liveness_) {
    const Cfg& c = cfg();
    liveness_.emplace(c, facts());
  }
  return *liveness_;
}

const AvailExprs& AnalysisCache::avail() {
  Stale();
  if (!avail_) {
    const Cfg& c = cfg();
    avail_.emplace(c, facts());
  }
  return *avail_;
}

const DefUseChains& AnalysisCache::defuse() {
  Stale();
  if (!defuse_) {
    const Cfg& c = cfg();
    defuse_.emplace(c, facts(), reaching());
  }
  return *defuse_;
}

const LoopTree& AnalysisCache::loops() {
  Stale();
  if (!loops_) loops_.emplace(program_);
  return *loops_;
}

const std::vector<Dependence>& AnalysisCache::deps() {
  Stale();
  if (!deps_) deps_.emplace(ComputeDependences(program_, loops()));
  return *deps_;
}

const Pdg& AnalysisCache::pdg() {
  Stale();
  if (!pdg_) pdg_.emplace(program_, deps());
  return *pdg_;
}

const DependenceSummaries& AnalysisCache::summaries() {
  Stale();
  if (!summaries_) summaries_.emplace(pdg());
  return *summaries_;
}

}  // namespace pivot
