#include "pivot/analysis/analyses.h"

#include <functional>
#include <utility>
#include <vector>

#include "pivot/support/fault_injector.h"
#include "pivot/support/worker_pool.h"

namespace pivot {

AnalysisCache::AnalysisCache(Program& program, AnalysisOptions options)
    : program_(program), options_(options) {
  program_.AddMutationListener(this);
}

AnalysisCache::~AnalysisCache() { program_.RemoveMutationListener(this); }

void AnalysisCache::OnProgramMutation(StmtId stmt, bool structural) {
  if (structural) structural_dirty_ = true;
  if (stmt.valid()) dirty_stmts_.insert(stmt);
}

void AnalysisCache::CountRebuild(Family family) {
  ++rebuilds_[static_cast<std::size_t>(family)];
  ++total_rebuilds_;
}

void AnalysisCache::Refresh() {
  if (valid_epoch_ == program_.epoch()) return;
  // A re-derivation window is about to start; transactional callers must
  // survive a failure here (the caches are already consistent — lazy
  // rebuild just restarts on the next query).
  PIVOT_FAULT_POINT("analysis.rebuild.pre");
  const bool expression_only =
      options_.incremental && valid_epoch_.has_value() && !structural_dirty_;
  if (expression_only) {
    RefreshExpressionOnly();
  } else {
    DropAll();
  }
  valid_epoch_ = program_.epoch();
  structural_dirty_ = false;
  dirty_stmts_.clear();
  ++epochs_refreshed_;
}

void AnalysisCache::DropAll() {
  // Dependents first (they hold references into their prerequisites).
  summaries_.reset();
  pdg_.reset();
  deps_.reset();
  loops_.reset();
  defuse_.reset();
  avail_.reset();
  liveness_.reset();
  reaching_.reset();
  facts_.reset();
  doms_.reset();
  cfg_.reset();
  flat_.reset();
  block_dags_.reset();
}

void AnalysisCache::RefreshExpressionOnly() {
  // Shape-invariant families: the statement tree kept its structure, so the
  // flatten order, the CFG, and its dominator tree still describe the
  // program exactly.
  int retained = 0;
  if (flat_) ++retained;
  if (cfg_) ++retained;
  if (doms_) ++retained;

  // The loop tree caches constant bounds parsed from header expressions, so
  // it survives only windows that left every loop header untouched.
  bool loop_header_dirty = false;
  for (const StmtId id : dirty_stmts_) {
    const Stmt* stmt = program_.FindStmt(id);
    if (stmt != nullptr && stmt->kind == StmtKind::kDo) {
      loop_header_dirty = true;
      break;
    }
  }
  if (loops_) {
    if (loop_header_dirty) {
      loops_.reset();
    } else {
      ++retained;
    }
  }

  if (facts_ && cfg_) {
    RefreshDirtyFacts();
    ++retained;
  } else {
    facts_.reset();
  }
  if (block_dags_) {
    RefreshDirtyBlockDags();
    ++retained;
  }
  NoteRetained(retained);

  // Replaced expressions change what the dirty nodes define and use, so
  // every global solver result is stale. They are rebuilt from the bottom
  // (never warm-started): an over-seeded may-analysis can converge above
  // the least fixpoint, and the differential harness demands bit-identical
  // answers. Incrementality comes from the retained inputs above.
  summaries_.reset();
  pdg_.reset();
  deps_.reset();
  defuse_.reset();
  avail_.reset();
  liveness_.reset();
  reaching_.reset();
}

void AnalysisCache::RefreshDirtyFacts() {
  for (const StmtId id : dirty_stmts_) {
    Stmt* stmt = program_.FindStmt(id);
    // Mutations on detached subtrees (e.g. building a replacement off-tree)
    // dirty ids with no CFG node; nothing cached depends on them.
    if (stmt == nullptr || !stmt->attached) continue;
    const auto it = cfg_->node_of.find(id);
    if (it == cfg_->node_of.end()) continue;
    facts_->node_facts[static_cast<std::size_t>(it->second)] =
        ComputeNodeFacts(*stmt, facts_->names);
    ++facts_nodes_refreshed_;
  }
}

void AnalysisCache::RefreshDirtyBlockDags() {
  BlockDags next;
  next.blocks = CollectBasicBlocks(program_);
  next.dags.reserve(next.blocks.size());
  for (std::size_t b = 0; b < next.blocks.size(); ++b) {
    const BasicBlock& block = next.blocks[b];
    bool dirty = false;
    for (const Stmt* stmt : block.stmts) {
      if (dirty_stmts_.count(stmt->id) != 0) {
        dirty = true;
        break;
      }
    }
    const bool reusable = !dirty && b < block_dags_->blocks.size() &&
                          SameBlockStmts(block, block_dags_->blocks[b]);
    if (reusable) {
      next.dags.push_back(block_dags_->dags[b]);
      ++dag_blocks_reused_;
    } else {
      next.dags.push_back(std::make_shared<const BlockDag>(block));
      ++dag_blocks_rebuilt_;
    }
    for (const Stmt* stmt : block.stmts) {
      next.block_of[stmt->id] = static_cast<int>(b);
    }
  }
  *block_dags_ = std::move(next);
}

void AnalysisCache::Invalidate() {
  // No fault point here: rollback recovery calls Invalidate to discard
  // possibly half-built results, and recovery itself must not fault.
  DropAll();
  valid_epoch_.reset();
  structural_dirty_ = false;
  dirty_stmts_.clear();
}

const FlatProgram& AnalysisCache::flat() {
  Refresh();
  if (!flat_) {
    flat_.emplace(Flatten(program_));
    CountRebuild(Family::kFlat);
  }
  return *flat_;
}

const Cfg& AnalysisCache::cfg() {
  Refresh();
  if (!cfg_) {
    cfg_.emplace(BuildCfg(program_));
    CountRebuild(Family::kCfg);
  }
  return *cfg_;
}

const Dominators& AnalysisCache::doms() {
  Refresh();
  if (!doms_) {
    doms_.emplace(cfg());
    CountRebuild(Family::kDoms);
  }
  return *doms_;
}

const ProgramFacts& AnalysisCache::facts() {
  Refresh();
  if (!facts_) {
    facts_.emplace(ComputeFacts(cfg()));
    CountRebuild(Family::kFacts);
  }
  return *facts_;
}

const ReachingDefs& AnalysisCache::reaching() {
  Refresh();
  if (!reaching_) {
    const Cfg& c = cfg();
    reaching_.emplace(c, facts());
    CountRebuild(Family::kReaching);
  }
  return *reaching_;
}

const Liveness& AnalysisCache::liveness() {
  Refresh();
  if (!liveness_) {
    const Cfg& c = cfg();
    liveness_.emplace(c, facts());
    CountRebuild(Family::kLiveness);
  }
  return *liveness_;
}

const AvailExprs& AnalysisCache::avail() {
  Refresh();
  if (!avail_) {
    const Cfg& c = cfg();
    avail_.emplace(c, facts());
    CountRebuild(Family::kAvail);
  }
  return *avail_;
}

const DefUseChains& AnalysisCache::defuse() {
  Refresh();
  if (!defuse_) {
    const Cfg& c = cfg();
    defuse_.emplace(c, facts(), reaching());
    CountRebuild(Family::kDefuse);
  }
  return *defuse_;
}

const LoopTree& AnalysisCache::loops() {
  Refresh();
  if (!loops_) {
    loops_.emplace(program_);
    CountRebuild(Family::kLoops);
  }
  return *loops_;
}

const std::vector<Dependence>& AnalysisCache::deps() {
  Refresh();
  if (!deps_) {
    deps_.emplace(ComputeDependences(program_, loops()));
    CountRebuild(Family::kDeps);
  }
  return *deps_;
}

const Pdg& AnalysisCache::pdg() {
  Refresh();
  if (!pdg_) {
    pdg_.emplace(program_, deps());
    CountRebuild(Family::kPdg);
  }
  return *pdg_;
}

const DependenceSummaries& AnalysisCache::summaries() {
  Refresh();
  if (!summaries_) {
    summaries_.emplace(pdg());
    CountRebuild(Family::kSummaries);
  }
  return *summaries_;
}

const BlockDags& AnalysisCache::block_dags() {
  Refresh();
  if (!block_dags_) {
    block_dags_.emplace(BuildBlockDags(program_));
    CountRebuild(Family::kBlockDags);
  }
  return *block_dags_;
}

bool AnalysisCache::FullyPrimed() const {
  return valid_epoch_.has_value() && *valid_epoch_ == program_.epoch() &&
         !structural_dirty_ && dirty_stmts_.empty() && flat_ && cfg_ &&
         doms_ && facts_ && reaching_ && liveness_ && avail_ && defuse_ &&
         loops_ && deps_ && pdg_ && summaries_ && block_dags_;
}

void AnalysisCache::PrimeAll() {
  Refresh();
  if (!options_.parallel_rebuild) {
    flat();
    cfg();
    doms();
    facts();
    reaching();
    liveness();
    avail();
    defuse();
    loops();
    deps();
    pdg();
    summaries();
    block_dags();
    return;
  }

  // Parallel path: families grouped into dependency waves. Tasks build
  // directly into their (distinct) member slots and never call accessors —
  // an accessor would lazily build a prerequisite and race another task;
  // the wave structure guarantees every prerequisite is already installed.
  // Counters are updated on this thread after each join.
  const int threads = options_.threads;
  std::vector<Family> built;
  auto record = [&] {
    for (const Family family : built) CountRebuild(family);
    built.clear();
  };

  std::vector<std::function<void()>> wave;
  if (!flat_) {
    built.push_back(Family::kFlat);
    wave.push_back([this] { flat_.emplace(Flatten(program_)); });
  }
  if (!cfg_) {
    built.push_back(Family::kCfg);
    wave.push_back([this] { cfg_.emplace(BuildCfg(program_)); });
  }
  if (!loops_) {
    built.push_back(Family::kLoops);
    wave.push_back([this] { loops_.emplace(program_); });
  }
  if (!block_dags_) {
    built.push_back(Family::kBlockDags);
    wave.push_back([this] { block_dags_.emplace(BuildBlockDags(program_)); });
  }
  WorkerPool::RunAll(std::move(wave), threads);
  record();

  wave.clear();
  if (!doms_) {
    built.push_back(Family::kDoms);
    wave.push_back([this] { doms_.emplace(*cfg_); });
  }
  if (!facts_) {
    built.push_back(Family::kFacts);
    wave.push_back([this] { facts_.emplace(ComputeFacts(*cfg_)); });
  }
  if (!deps_) {
    built.push_back(Family::kDeps);
    wave.push_back(
        [this] { deps_.emplace(ComputeDependences(program_, *loops_)); });
  }
  WorkerPool::RunAll(std::move(wave), threads);
  record();

  wave.clear();
  if (!reaching_) {
    built.push_back(Family::kReaching);
    wave.push_back([this] { reaching_.emplace(*cfg_, *facts_); });
  }
  if (!liveness_) {
    built.push_back(Family::kLiveness);
    wave.push_back([this] { liveness_.emplace(*cfg_, *facts_); });
  }
  if (!avail_) {
    built.push_back(Family::kAvail);
    wave.push_back([this] { avail_.emplace(*cfg_, *facts_); });
  }
  if (!pdg_) {
    built.push_back(Family::kPdg);
    wave.push_back([this] { pdg_.emplace(program_, *deps_); });
  }
  WorkerPool::RunAll(std::move(wave), threads);
  record();

  wave.clear();
  if (!defuse_) {
    built.push_back(Family::kDefuse);
    wave.push_back([this] { defuse_.emplace(*cfg_, *facts_, *reaching_); });
  }
  if (!summaries_) {
    built.push_back(Family::kSummaries);
    wave.push_back([this] { summaries_.emplace(*pdg_); });
  }
  WorkerPool::RunAll(std::move(wave), threads);
  record();
}

}  // namespace pivot
