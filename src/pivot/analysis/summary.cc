#include "pivot/analysis/summary.h"

#include <algorithm>
#include <sstream>

#include "pivot/support/diagnostics.h"

namespace pivot {

DependenceSummaries::DependenceSummaries(const Pdg& pdg) : pdg_(pdg) {
  for (const Dependence& dep : pdg.deps()) {
    const int lcr = pdg.Lcr(*dep.src, *dep.dst);
    by_region_[lcr].push_back(&dep);
    ++total_;
  }
}

const std::vector<const Dependence*>& DependenceSummaries::AtRegion(
    int region) const {
  auto it = by_region_.find(region);
  return it == by_region_.end() ? empty_ : it->second;
}

std::vector<const Dependence*> DependenceSummaries::Between(
    const Stmt& a, const Stmt& b, bool either_direction,
    std::size_t* inspected) const {
  const int node_a = pdg_.NodeOf(a);
  const int node_b = pdg_.NodeOf(b);
  const int lcr = pdg_.Lcr(a, b);

  std::vector<const Dependence*> result;
  std::size_t count = 0;
  for (const Dependence* dep : AtRegion(lcr)) {
    ++count;
    const int src_node = pdg_.NodeOf(*dep->src);
    const int dst_node = pdg_.NodeOf(*dep->dst);
    const bool forward = pdg_.InSubtree(node_a, src_node) &&
                         pdg_.InSubtree(node_b, dst_node);
    const bool backward = pdg_.InSubtree(node_b, src_node) &&
                          pdg_.InSubtree(node_a, dst_node);
    if (forward || (either_direction && backward)) result.push_back(dep);
  }
  if (inspected != nullptr) *inspected = count;
  return result;
}

std::string DependenceSummaries::ToString() const {
  std::vector<int> regions;
  regions.reserve(by_region_.size());
  for (const auto& [region, deps] : by_region_) regions.push_back(region);
  std::sort(regions.begin(), regions.end());

  std::ostringstream os;
  for (int region : regions) {
    std::vector<std::string> lines;
    for (const Dependence* dep : by_region_.at(region)) {
      lines.push_back(dep->ToString());
    }
    std::sort(lines.begin(), lines.end());
    os << "R" << region << ":\n";
    for (const std::string& line : lines) os << "  " << line << '\n';
  }
  return os.str();
}

}  // namespace pivot
