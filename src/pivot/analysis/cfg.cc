#include "pivot/analysis/cfg.h"

#include <algorithm>
#include <sstream>

#include "pivot/ir/printer.h"
#include "pivot/support/diagnostics.h"

namespace pivot {
namespace {

class Builder {
 public:
  explicit Builder(Program& program) : program_(program) {}

  Cfg Build() {
    cfg_.entry = NewNode(CfgNode::Kind::kEntry, nullptr);
    cfg_.exit = NewNode(CfgNode::Kind::kExit, nullptr);
    std::vector<int> dangling = BuildSeq(program_.top(), {cfg_.entry});
    for (int from : dangling) AddEdge(from, cfg_.exit);
    return std::move(cfg_);
  }

 private:
  int NewNode(CfgNode::Kind kind, Stmt* stmt) {
    CfgNode node;
    node.kind = kind;
    node.stmt = stmt;
    cfg_.nodes.push_back(std::move(node));
    const int index = static_cast<int>(cfg_.nodes.size()) - 1;
    if (stmt != nullptr) cfg_.node_of[stmt->id] = index;
    return index;
  }

  void AddEdge(int from, int to) {
    cfg_.nodes[static_cast<std::size_t>(from)].succs.push_back(to);
    cfg_.nodes[static_cast<std::size_t>(to)].preds.push_back(from);
  }

  // Wires `body` after the given incoming edges; returns the dangling
  // exits that continue to whatever follows the body.
  std::vector<int> BuildSeq(const std::vector<StmtPtr>& body,
                            std::vector<int> incoming) {
    for (const auto& stmt_ptr : body) {
      Stmt& stmt = *stmt_ptr;
      const int node = NewNode(CfgNode::Kind::kStmt, &stmt);
      for (int from : incoming) AddEdge(from, node);
      switch (stmt.kind) {
        case StmtKind::kAssign:
        case StmtKind::kRead:
        case StmtKind::kWrite:
          incoming = {node};
          break;
        case StmtKind::kDo: {
          // node tests the bound: taken -> body, body end -> node (back
          // edge), not taken -> fallthrough.
          std::vector<int> body_out = BuildSeq(stmt.body, {node});
          for (int from : body_out) AddEdge(from, node);
          incoming = {node};
          break;
        }
        case StmtKind::kIf: {
          std::vector<int> then_out = BuildSeq(stmt.body, {node});
          std::vector<int> out = std::move(then_out);
          if (stmt.else_body.empty()) {
            out.push_back(node);  // false edge falls through
          } else {
            std::vector<int> else_out = BuildSeq(stmt.else_body, {node});
            out.insert(out.end(), else_out.begin(), else_out.end());
          }
          incoming = std::move(out);
          break;
        }
      }
    }
    return incoming;
  }

  Program& program_;
  Cfg cfg_;
};

void PostOrder(const Cfg& cfg, int node, std::vector<bool>& visited,
               std::vector<int>& out) {
  visited[static_cast<std::size_t>(node)] = true;
  for (int succ : cfg.nodes[static_cast<std::size_t>(node)].succs) {
    if (!visited[static_cast<std::size_t>(succ)]) {
      PostOrder(cfg, succ, visited, out);
    }
  }
  out.push_back(node);
}

}  // namespace

int Cfg::NodeOf(const Stmt& stmt) const {
  auto it = node_of.find(stmt.id);
  PIVOT_CHECK_MSG(it != node_of.end(), "statement has no CFG node");
  return it->second;
}

std::vector<int> Cfg::ReversePostOrder() const {
  std::vector<bool> visited(nodes.size(), false);
  std::vector<int> order;
  order.reserve(nodes.size());
  PostOrder(*this, entry, visited, order);
  std::reverse(order.begin(), order.end());
  return order;
}

std::string Cfg::ToDot() const {
  std::ostringstream os;
  os << "digraph cfg {\n";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const CfgNode& node = nodes[i];
    os << "  n" << i << " [label=\"";
    switch (node.kind) {
      case CfgNode::Kind::kEntry: os << "ENTRY"; break;
      case CfgNode::Kind::kExit: os << "EXIT"; break;
      case CfgNode::Kind::kStmt: os << StmtHeadToString(*node.stmt); break;
    }
    os << "\"];\n";
    for (int succ : node.succs) {
      os << "  n" << i << " -> n" << succ << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

Cfg BuildCfg(Program& program) { return Builder(program).Build(); }

}  // namespace pivot
