// AnalysisCache: epoch-validated facade over all analyses.
//
// Transformations and the undo engine query analyses through this cache;
// every Program mutation bumps the program epoch, and stale results are
// rebuilt lazily on next access. The rebuild counters feed the paper's
// event-driven-regional-undo benchmarks (how much re-analysis each undo
// strategy triggers).
#ifndef PIVOT_ANALYSIS_ANALYSES_H_
#define PIVOT_ANALYSIS_ANALYSES_H_

#include <memory>
#include <optional>

#include "pivot/analysis/cfg.h"
#include "pivot/analysis/dataflow.h"
#include "pivot/analysis/defuse.h"
#include "pivot/analysis/depend.h"
#include "pivot/analysis/dominators.h"
#include "pivot/analysis/flatten.h"
#include "pivot/analysis/loops.h"
#include "pivot/analysis/pdg.h"
#include "pivot/analysis/summary.h"

namespace pivot {

class AnalysisCache {
 public:
  explicit AnalysisCache(Program& program) : program_(program) {}

  Program& program() { return program_; }

  const FlatProgram& flat();
  const Cfg& cfg();
  const Dominators& doms();
  const ProgramFacts& facts();
  const ReachingDefs& reaching();
  const Liveness& liveness();
  const AvailExprs& avail();
  const DefUseChains& defuse();
  const LoopTree& loops();
  const std::vector<Dependence>& deps();
  const Pdg& pdg();
  const DependenceSummaries& summaries();

  // Drops every cached result regardless of epoch.
  void Invalidate();

  // Number of from-scratch rebuilds of each analysis family since
  // construction — the re-analysis cost metric used by the benchmarks.
  std::uint64_t rebuild_count() const { return rebuilds_; }

 private:
  // True (and refreshes bookkeeping) when the cached epoch is stale.
  bool Stale();

  Program& program_;
  std::uint64_t cached_epoch_ = 0;
  std::uint64_t rebuilds_ = 0;

  std::optional<FlatProgram> flat_;
  std::optional<Cfg> cfg_;
  std::optional<Dominators> doms_;
  std::optional<ProgramFacts> facts_;
  std::optional<ReachingDefs> reaching_;
  std::optional<Liveness> liveness_;
  std::optional<AvailExprs> avail_;
  std::optional<DefUseChains> defuse_;
  std::optional<LoopTree> loops_;
  std::optional<std::vector<Dependence>> deps_;
  std::optional<Pdg> pdg_;
  std::optional<DependenceSummaries> summaries_;
};

}  // namespace pivot

#endif  // PIVOT_ANALYSIS_ANALYSES_H_
