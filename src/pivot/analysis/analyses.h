// AnalysisCache: epoch-validated facade over all analyses.
//
// Transformations and the undo engine query analyses through this cache;
// every Program mutation bumps the program epoch, and stale results are
// rebuilt lazily on next access. The rebuild counters feed the paper's
// event-driven-regional-undo benchmarks (how much re-analysis each undo
// strategy triggers).
//
// Invalidation tiers (see DESIGN.md §8):
//   1. Baseline (AnalysisOptions::incremental == false): any epoch bump
//      drops every family; each is re-derived from scratch on next access.
//   2. Per-family validity: each analysis family carries its own validity
//      flag, so a stale epoch re-derives only the families actually
//      queried afterwards, and the cheap structural families are managed
//      independently of the expensive semantic ones.
//   3. Region-scoped (incremental == true): the cache listens to the
//      program's mutation stream. An epoch window containing only pure
//      expression replacements leaves the statement tree's *shape* intact,
//      so the structural families (flatten, CFG, dominators, and — when no
//      loop header was touched — the loop tree) are carried over
//      unrebuilt; block-local facts (per-node gen/kill input, per-block
//      DAGs) are recomputed for dirty statements only, reseeding the
//      global data-flow solvers from the unchanged remainder. Structural
//      mutations fall back to tier 1 for that window.
// An opt-in parallel path (AnalysisOptions::parallel_rebuild) rebuilds
// independent stale families on a small thread pool in PrimeAll().
#ifndef PIVOT_ANALYSIS_ANALYSES_H_
#define PIVOT_ANALYSIS_ANALYSES_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_set>

#include "pivot/analysis/cfg.h"
#include "pivot/analysis/dag.h"
#include "pivot/analysis/dataflow.h"
#include "pivot/analysis/defuse.h"
#include "pivot/analysis/depend.h"
#include "pivot/analysis/dominators.h"
#include "pivot/analysis/flatten.h"
#include "pivot/analysis/loops.h"
#include "pivot/analysis/pdg.h"
#include "pivot/analysis/summary.h"

namespace pivot {

struct AnalysisOptions {
  // Region-scoped invalidation driven by the program's mutation stream;
  // off = the paper's non-regional baseline (drop everything, rebuild all).
  bool incremental = false;
  // PrimeAll() rebuilds independent stale families on a small thread pool.
  bool parallel_rebuild = false;
  int threads = 4;
};

class AnalysisCache final : public Program::MutationListener {
 public:
  // The thirteen analysis families the cache manages. Order = dependency
  // order (a family only depends on earlier ones).
  enum class Family {
    kFlat,
    kCfg,
    kDoms,
    kLoops,
    kFacts,
    kReaching,
    kLiveness,
    kAvail,
    kDefuse,
    kDeps,
    kPdg,
    kSummaries,
    kBlockDags,
  };
  static constexpr int kNumFamilies = 13;

  explicit AnalysisCache(Program& program, AnalysisOptions options = {});
  ~AnalysisCache() override;
  AnalysisCache(const AnalysisCache&) = delete;
  AnalysisCache& operator=(const AnalysisCache&) = delete;

  Program& program() { return program_; }
  const AnalysisOptions& options() const { return options_; }

  const FlatProgram& flat();
  const Cfg& cfg();
  const Dominators& doms();
  const ProgramFacts& facts();
  const ReachingDefs& reaching();
  const Liveness& liveness();
  const AvailExprs& avail();
  const DefUseChains& defuse();
  const LoopTree& loops();
  const std::vector<Dependence>& deps();
  const Pdg& pdg();
  const DependenceSummaries& summaries();
  const BlockDags& block_dags();

  // Drops every cached result unconditionally and forgets the validated
  // epoch entirely, so the next access always re-derives — even when the
  // program epoch has not moved since. (The old implementation reset the
  // cached epoch to 0, a value a program epoch could alias, letting an
  // explicitly invalidated cache be judged up to date.)
  void Invalidate();

  // Builds every stale family now — on options().threads worker threads in
  // dependency waves when parallel_rebuild is set, sequentially otherwise.
  void PrimeAll();

  // True when every family is built and validated against the current
  // program epoch with no pending mutation window — i.e. any accessor call
  // is a pure read. The undo engine's parallel safety fan-out asserts this
  // before sharing the cache across threads.
  bool FullyPrimed() const;

  // Number of from-scratch family re-derivations since construction — the
  // re-analysis cost metric used by the benchmarks. Incremental refreshes
  // (facts nodes, reused block DAGs) are counted separately below.
  std::uint64_t rebuild_count() const { return total_rebuilds_; }
  std::uint64_t family_rebuilds(Family family) const {
    return rebuilds_[static_cast<std::size_t>(family)];
  }

  // --- incremental-path observability (benchmarks, tests) ---
  std::uint64_t epochs_refreshed() const { return epochs_refreshed_; }
  // Families carried across an epoch window without a rebuild.
  std::uint64_t families_retained() const { return families_retained_; }
  // Dirty CFG nodes whose block-local facts were recomputed in place.
  std::uint64_t facts_nodes_refreshed() const {
    return facts_nodes_refreshed_;
  }
  // Per-block DAGs carried over / rebuilt by incremental refreshes.
  std::uint64_t dag_blocks_reused() const { return dag_blocks_reused_; }
  std::uint64_t dag_blocks_rebuilt() const { return dag_blocks_rebuilt_; }

  // Program::MutationListener: feeds the dirty set.
  void OnProgramMutation(StmtId stmt, bool structural) override;

 private:
  // Brings the cache's validity bookkeeping up to the current program
  // epoch: classifies the pending mutation window and either drops
  // everything (structural / baseline) or retains the structural families
  // and refreshes block-local facts for the dirty statements.
  void Refresh();
  void DropAll();
  // Expression-only window: retain shape-invariant families, refresh the
  // dirty statements' block-local facts and block DAGs in place.
  void RefreshExpressionOnly();
  void RefreshDirtyFacts();
  void RefreshDirtyBlockDags();
  void CountRebuild(Family family);
  void NoteRetained(int families) {
    families_retained_ += static_cast<std::uint64_t>(families);
  }

  Program& program_;
  AnalysisOptions options_;

  // nullopt = nothing validated (fresh or explicitly invalidated): the
  // sentinel can never alias a real program epoch.
  std::optional<std::uint64_t> valid_epoch_;

  // Mutation window since valid_epoch_ (fed by OnProgramMutation).
  bool structural_dirty_ = false;
  std::unordered_set<StmtId> dirty_stmts_;

  std::array<std::uint64_t, kNumFamilies> rebuilds_{};
  std::uint64_t total_rebuilds_ = 0;
  std::uint64_t epochs_refreshed_ = 0;
  std::uint64_t families_retained_ = 0;
  std::uint64_t facts_nodes_refreshed_ = 0;
  std::uint64_t dag_blocks_reused_ = 0;
  std::uint64_t dag_blocks_rebuilt_ = 0;

  std::optional<FlatProgram> flat_;
  std::optional<Cfg> cfg_;
  std::optional<Dominators> doms_;
  std::optional<ProgramFacts> facts_;
  std::optional<ReachingDefs> reaching_;
  std::optional<Liveness> liveness_;
  std::optional<AvailExprs> avail_;
  std::optional<DefUseChains> defuse_;
  std::optional<LoopTree> loops_;
  std::optional<std::vector<Dependence>> deps_;
  std::optional<Pdg> pdg_;
  std::optional<DependenceSummaries> summaries_;
  std::optional<BlockDags> block_dags_;
};

}  // namespace pivot

#endif  // PIVOT_ANALYSIS_ANALYSES_H_
