#include "pivot/analysis/dominators.h"

#include "pivot/support/diagnostics.h"

namespace pivot {

Dominators::Dominators(const Cfg& cfg) : cfg_(cfg) {
  const std::size_t n = cfg.nodes.size();
  idom_.assign(n, -1);
  rpo_index_.assign(n, -1);

  const std::vector<int> rpo = cfg.ReversePostOrder();
  for (std::size_t i = 0; i < rpo.size(); ++i) {
    rpo_index_[static_cast<std::size_t>(rpo[i])] = static_cast<int>(i);
  }

  auto intersect = [this](int a, int b) {
    while (a != b) {
      while (rpo_index_[static_cast<std::size_t>(a)] >
             rpo_index_[static_cast<std::size_t>(b)]) {
        a = idom_[static_cast<std::size_t>(a)];
      }
      while (rpo_index_[static_cast<std::size_t>(b)] >
             rpo_index_[static_cast<std::size_t>(a)]) {
        b = idom_[static_cast<std::size_t>(b)];
      }
    }
    return a;
  };

  idom_[static_cast<std::size_t>(cfg.entry)] = cfg.entry;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int node : rpo) {
      if (node == cfg.entry) continue;
      int new_idom = -1;
      for (int pred : cfg.nodes[static_cast<std::size_t>(node)].preds) {
        if (idom_[static_cast<std::size_t>(pred)] == -1) continue;
        new_idom = new_idom == -1 ? pred : intersect(pred, new_idom);
      }
      if (new_idom != -1 && idom_[static_cast<std::size_t>(node)] != new_idom) {
        idom_[static_cast<std::size_t>(node)] = new_idom;
        changed = true;
      }
    }
  }
}

int Dominators::Idom(int node) const {
  const int idom = idom_[static_cast<std::size_t>(node)];
  return node == cfg_.entry ? -1 : idom;
}

bool Dominators::Dominates(int a, int b) const {
  int node = b;
  while (true) {
    if (node == a) return true;
    if (node == cfg_.entry) return false;
    const int up = idom_[static_cast<std::size_t>(node)];
    if (up == -1 || up == node) return false;
    node = up;
  }
}

bool Dominators::Dominates(const Stmt& a, const Stmt& b) const {
  return Dominates(cfg_.NodeOf(a), cfg_.NodeOf(b));
}

}  // namespace pivot
