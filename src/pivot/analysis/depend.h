// Data-dependence analysis.
//
// Computes flow (true), anti and output dependences between statements,
// with direction vectors over common enclosing loops. Array subscripts are
// analyzed with ZIV and strong-SIV tests on affine forms (c0 + c1*i);
// anything else is handled conservatively ('*' directions). On top of the
// dependence set, the module exposes the two legality predicates the
// parallelizing transformations need:
//   * InterchangePrevented — a dependence with direction (<, >) over the
//     (outer, inner) pair of a tight nest;
//   * FusionPrevented     — a dependence from the first loop's body to the
//     second's that fusion would reverse (fused distance < 0).
#ifndef PIVOT_ANALYSIS_DEPEND_H_
#define PIVOT_ANALYSIS_DEPEND_H_

#include <map>
#include <string>
#include <vector>

#include "pivot/analysis/loops.h"
#include "pivot/ir/program.h"

namespace pivot {

enum class DepKind { kFlow, kAnti, kOutput };
enum class DepDir { kLt, kEq, kGt, kStar };

struct Dependence {
  Stmt* src = nullptr;  // source executes first
  Stmt* dst = nullptr;
  DepKind kind = DepKind::kFlow;
  std::string var;              // the memory name carrying the dependence
  std::vector<Stmt*> loops;     // common enclosing loops, outermost first
  std::vector<DepDir> dirs;     // one per common loop
  bool loop_independent = true; // all directions '='

  std::string ToString() const;
};

const char* DepKindToString(DepKind kind);
const char* DepDirToString(DepDir dir);

// Affine form of a subscript: konst + sum(coeff[v] * v).
struct AffineForm {
  bool ok = false;
  long konst = 0;
  std::map<std::string, long> coeff;  // zero coefficients omitted
};
AffineForm ExtractAffine(const Expr& e);

// All pairwise dependences between attached statements. Quadratic in the
// number of memory references; fine at interactive-program scale.
std::vector<Dependence> ComputeDependences(Program& program,
                                           const LoopTree& loop_tree);

// Loop interchange of the tight nest (outer, inner) is illegal: a
// dependence carried with directions (<, >) — or unanalyzable — exists.
bool InterchangePrevented(Program& program, const LoopTree& loop_tree,
                          const Stmt& outer, const Stmt& inner);

// Fusing adjacent loops `first`/`second` (same constant bounds assumed
// pre-checked) is illegal: some dependence from first's body to second's
// body would be reversed by fusion.
bool FusionPrevented(Program& program, const LoopTree& loop_tree,
                     const Stmt& first, const Stmt& second);

// The same test on explicit statement sets, with the loop variables named
// directly. Used by the fusion safety re-check, where the two halves
// already live in one fused loop. `trip` bounds dependence distances
// (-1 = unknown).
bool FusionPreventedSets(const std::vector<Stmt*>& body1,
                         const std::vector<Stmt*>& body2,
                         const std::string& var1, const std::string& var2,
                         long trip);

}  // namespace pivot

#endif  // PIVOT_ANALYSIS_DEPEND_H_
