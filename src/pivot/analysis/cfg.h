// Control-flow graph over statements.
//
// The CFG is built at statement granularity: every attached statement is a
// node; `do` and `if` statements are their own (predicate) nodes with the
// structured edges of the source. Data-flow analyses (dataflow.h) iterate
// over this graph; the per-block DAG construction (dag.h) derives basic
// blocks from it.
#ifndef PIVOT_ANALYSIS_CFG_H_
#define PIVOT_ANALYSIS_CFG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "pivot/ir/program.h"

namespace pivot {

struct CfgNode {
  enum class Kind { kEntry, kExit, kStmt };
  Kind kind = Kind::kStmt;
  Stmt* stmt = nullptr;  // null for entry/exit
  std::vector<int> succs;
  std::vector<int> preds;
};

struct Cfg {
  std::vector<CfgNode> nodes;
  int entry = 0;
  int exit = 0;
  std::unordered_map<StmtId, int> node_of;

  int NodeOf(const Stmt& stmt) const;
  std::size_t size() const { return nodes.size(); }

  // Reverse-post-order from entry (a good iteration order for forward
  // data-flow problems).
  std::vector<int> ReversePostOrder() const;

  std::string ToDot() const;  // Graphviz dump for debugging
};

Cfg BuildCfg(Program& program);

}  // namespace pivot

#endif  // PIVOT_ANALYSIS_CFG_H_
