#include "pivot/analysis/defuse.h"

namespace pivot {

DefUseChains::DefUseChains(const Cfg& cfg, const ProgramFacts& facts,
                           const ReachingDefs& reaching) {
  for (const CfgNode& node : cfg.nodes) {
    if (node.kind != CfgNode::Kind::kStmt) continue;
    Stmt& use_stmt = *node.stmt;
    const std::size_t n = static_cast<std::size_t>(cfg.NodeOf(use_stmt));
    for (int name_id : facts.node_facts[n].uses) {
      const std::string& name = facts.names.NameOf(name_id);
      for (const Definition* def : reaching.DefsReaching(use_stmt, name)) {
        if (def->entry) continue;  // uninitialized-storage pseudo-def
        uses_of_[def->stmt->id].push_back(&use_stmt);
      }
    }
  }
}

const std::vector<Stmt*>& DefUseChains::UsesOf(const Stmt& def_stmt) const {
  auto it = uses_of_.find(def_stmt.id);
  return it == uses_of_.end() ? empty_ : it->second;
}

bool DefUseChains::HasUses(const Stmt& def_stmt) const {
  return !UsesOf(def_stmt).empty();
}

}  // namespace pivot
