// Data-dependence summaries on region nodes (paper Figure 3).
//
// Every dependence is annotated on the *least common region* of its source
// and sink. A query about two sibling subtrees (e.g. "may these adjacent
// loops fuse?") then inspects only the dependences summarized on their
// common region instead of visiting every node pair under the loops — the
// paper's motivating example for event-driven regional analysis.
#ifndef PIVOT_ANALYSIS_SUMMARY_H_
#define PIVOT_ANALYSIS_SUMMARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "pivot/analysis/pdg.h"

namespace pivot {

class DependenceSummaries {
 public:
  explicit DependenceSummaries(const Pdg& pdg);

  // Dependences whose LCR is `region`.
  const std::vector<const Dependence*>& AtRegion(int region) const;

  // Dependences summarized on the common region of the subtrees rooted at
  // the PDG nodes of `a` and `b` whose source lies under `a`'s subtree and
  // sink under `b`'s subtree (or vice versa when `either_direction`).
  // The inspected candidate count is reported through `inspected` for the
  // regional-analysis benchmarks.
  std::vector<const Dependence*> Between(const Stmt& a, const Stmt& b,
                                         bool either_direction,
                                         std::size_t* inspected = nullptr) const;

  std::size_t TotalSummarized() const { return total_; }

  // Canonical dump (regions ascending, dependences sorted within each):
  // equal summaries print identically, which is what the incremental-vs-
  // from-scratch differential harness diffs.
  std::string ToString() const;

 private:
  const Pdg& pdg_;
  std::unordered_map<int, std::vector<const Dependence*>> by_region_;
  std::vector<const Dependence*> empty_;
  std::size_t total_ = 0;
};

}  // namespace pivot

#endif  // PIVOT_ANALYSIS_SUMMARY_H_
