#include "pivot/analysis/depend.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "pivot/analysis/flatten.h"
#include "pivot/support/diagnostics.h"

namespace pivot {

const char* DepKindToString(DepKind kind) {
  switch (kind) {
    case DepKind::kFlow: return "flow";
    case DepKind::kAnti: return "anti";
    case DepKind::kOutput: return "output";
  }
  return "?";
}

const char* DepDirToString(DepDir dir) {
  switch (dir) {
    case DepDir::kLt: return "<";
    case DepDir::kEq: return "=";
    case DepDir::kGt: return ">";
    case DepDir::kStar: return "*";
  }
  return "?";
}

std::string Dependence::ToString() const {
  std::ostringstream os;
  os << DepKindToString(kind) << " dep on '" << var << "' s"
     << src->id.value() << " -> s" << dst->id.value() << " (";
  for (std::size_t i = 0; i < dirs.size(); ++i) {
    if (i != 0) os << ",";
    os << DepDirToString(dirs[i]);
  }
  os << ")";
  return os.str();
}

AffineForm ExtractAffine(const Expr& e) {
  AffineForm form;
  switch (e.kind) {
    case ExprKind::kIntConst:
      form.ok = true;
      form.konst = e.ival;
      return form;
    case ExprKind::kVarRef:
      form.ok = true;
      form.coeff[e.name] = 1;
      return form;
    case ExprKind::kUnary: {
      if (e.un != UnOp::kNeg) return form;
      AffineForm inner = ExtractAffine(*e.kids[0]);
      if (!inner.ok) return form;
      form.ok = true;
      form.konst = -inner.konst;
      for (auto& [name, c] : inner.coeff) form.coeff[name] = -c;
      return form;
    }
    case ExprKind::kBinary: {
      const AffineForm a = ExtractAffine(*e.kids[0]);
      const AffineForm b = ExtractAffine(*e.kids[1]);
      if (e.bin == BinOp::kAdd || e.bin == BinOp::kSub) {
        if (!a.ok || !b.ok) return form;
        const long sign = e.bin == BinOp::kAdd ? 1 : -1;
        form = a;
        form.konst += sign * b.konst;
        for (const auto& [name, c] : b.coeff) {
          form.coeff[name] += sign * c;
        }
      } else if (e.bin == BinOp::kMul) {
        // One side must be a pure constant.
        if (a.ok && a.coeff.empty() && b.ok) {
          form.ok = true;
          form.konst = a.konst * b.konst;
          for (const auto& [name, c] : b.coeff) {
            form.coeff[name] = a.konst * c;
          }
        } else if (b.ok && b.coeff.empty() && a.ok) {
          form.ok = true;
          form.konst = a.konst * b.konst;
          for (const auto& [name, c] : a.coeff) {
            form.coeff[name] = b.konst * c;
          }
        } else {
          return form;
        }
      } else {
        return form;
      }
      // Drop zero coefficients so "i - i" looks constant.
      for (auto it = form.coeff.begin(); it != form.coeff.end();) {
        it = it->second == 0 ? form.coeff.erase(it) : std::next(it);
      }
      return form;
    }
    default:
      return form;
  }
}

namespace {

struct Ref {
  Stmt* stmt = nullptr;
  std::string name;
  bool is_write = false;
  bool is_array = false;
  std::vector<const Expr*> subs;  // array subscripts
  int seq = 0;  // execution order key: 2*flat_pos + (is_write ? 1 : 0)
};

void CollectExprReads(Stmt* stmt, const Expr& root, std::vector<Ref>& refs) {
  ForEachExpr(root, [stmt, &refs](const Expr& e) {
    if (e.kind == ExprKind::kVarRef) {
      Ref r;
      r.stmt = stmt;
      r.name = e.name;
      refs.push_back(std::move(r));
    } else if (e.kind == ExprKind::kArrayRef) {
      Ref r;
      r.stmt = stmt;
      r.name = e.name;
      r.is_array = true;
      for (const auto& sub : e.kids) r.subs.push_back(sub.get());
      refs.push_back(std::move(r));
      // Subscript variable reads are picked up by the walk itself.
    }
  });
}

std::vector<Ref> CollectRefs(const std::vector<Stmt*>& stmts) {
  std::vector<Ref> refs;
  for (Stmt* stmt : stmts) {
    const std::size_t reads_begin = refs.size();
    switch (stmt->kind) {
      case StmtKind::kAssign:
        CollectExprReads(stmt, *stmt->rhs, refs);
        for (const auto& sub : stmt->lhs->kids) {
          CollectExprReads(stmt, *sub, refs);
        }
        break;
      case StmtKind::kRead:
        for (const auto& sub : stmt->lhs->kids) {
          CollectExprReads(stmt, *sub, refs);
        }
        break;
      case StmtKind::kWrite:
        CollectExprReads(stmt, *stmt->rhs, refs);
        break;
      case StmtKind::kIf:
        CollectExprReads(stmt, *stmt->cond, refs);
        break;
      case StmtKind::kDo:
        for (const ExprPtr* slot : {&stmt->lo, &stmt->hi, &stmt->step}) {
          if (*slot != nullptr) CollectExprReads(stmt, **slot, refs);
        }
        break;
    }
    (void)reads_begin;
    // Writes come after reads in a statement's execution.
    if ((stmt->kind == StmtKind::kAssign || stmt->kind == StmtKind::kRead) &&
        stmt->lhs != nullptr) {
      Ref w;
      w.stmt = stmt;
      w.name = stmt->lhs->name;
      w.is_write = true;
      w.is_array = stmt->lhs->kind == ExprKind::kArrayRef;
      for (const auto& sub : stmt->lhs->kids) w.subs.push_back(sub.get());
      refs.push_back(std::move(w));
    }
    if (stmt->kind == StmtKind::kDo) {
      Ref w;
      w.stmt = stmt;
      w.name = stmt->loop_var;
      w.is_write = true;
      refs.push_back(std::move(w));
    }
  }
  return refs;
}

// Result of testing one subscript dimension against one loop variable set.
struct DimConstraint {
  bool independent = false;   // provably never the same element
  bool unknown = false;       // unanalyzable -> '*'
  // Otherwise: per-loop-variable iteration deltas (sink - source); loops
  // absent from the map are unconstrained by this dimension.
  std::map<std::string, long> delta;
};

DimConstraint TestDim(const Expr& sub1, const Expr& sub2,
                      const std::vector<Stmt*>& common_loops,
                      const LoopTree& loop_tree) {
  DimConstraint result;
  const AffineForm f1 = ExtractAffine(sub1);
  const AffineForm f2 = ExtractAffine(sub2);
  if (!f1.ok || !f2.ok) {
    result.unknown = true;
    return result;
  }

  auto is_common_loop_var = [&](const std::string& name) {
    for (const Stmt* loop : common_loops) {
      if (loop->loop_var == name) return true;
    }
    return false;
  };

  // Any symbol that is not a common loop variable makes the dimension
  // unanalyzable unless it appears with the same coefficient on both sides
  // (same value at both accesses — it cancels).
  std::map<std::string, long> diff_coeff;  // f1 - f2 per symbol
  for (const auto& [name, c] : f1.coeff) diff_coeff[name] += c;
  for (const auto& [name, c] : f2.coeff) diff_coeff[name] -= c;
  for (const auto& [name, c] : diff_coeff) {
    if (c != 0 && !is_common_loop_var(name)) {
      result.unknown = true;
      return result;
    }
  }

  // Per common loop variable: strong SIV when coefficients match.
  for (const Stmt* loop : common_loops) {
    const auto it1 = f1.coeff.find(loop->loop_var);
    const auto it2 = f2.coeff.find(loop->loop_var);
    const long a1 = it1 == f1.coeff.end() ? 0 : it1->second;
    const long a2 = it2 == f2.coeff.end() ? 0 : it2->second;
    if (a1 == 0 && a2 == 0) continue;  // dimension ignores this loop
    if (a1 != a2) {
      result.unknown = true;  // weak SIV / MIV: give up
      return result;
    }
  }

  // With all varying coefficients equal, equality of the subscripts reduces
  // to sum(a_v * (I2_v - I1_v)) = c1 - c2. Solvable exactly when a single
  // loop variable varies; otherwise treat as unknown.
  const long c_diff = f1.konst - f2.konst;
  std::vector<const Stmt*> varying;
  for (const Stmt* loop : common_loops) {
    const auto it = f1.coeff.find(loop->loop_var);
    if (it != f1.coeff.end() && it->second != 0) varying.push_back(loop);
  }
  if (varying.empty()) {
    // ZIV: both sides constant w.r.t. the common loops.
    if (c_diff != 0) result.independent = true;
    return result;
  }
  if (varying.size() > 1) {
    result.unknown = true;
    return result;
  }

  const Stmt* loop = varying[0];
  const long a = f1.coeff.at(loop->loop_var);
  if (c_diff % a != 0) {
    result.independent = true;
    return result;
  }
  const long delta = c_diff / a;  // I2 - I1
  const LoopInfo* info = loop_tree.InfoOf(*loop);
  if (info != nullptr && info->TripCount() >= 0 &&
      std::abs(delta) >= info->TripCount()) {
    result.independent = true;
    return result;
  }
  result.delta[loop->loop_var] = delta;
  return result;
}

DepKind KindOf(bool src_write, bool dst_write) {
  if (src_write && dst_write) return DepKind::kOutput;
  if (src_write) return DepKind::kFlow;
  return DepKind::kAnti;
}

// Tests one ordered reference pair; appends a dependence if one may exist.
void TestPair(const Ref& r1, const Ref& r2,
              const std::vector<Stmt*>& common_loops,
              const LoopTree& loop_tree, std::vector<Dependence>& out) {
  std::vector<DepDir> dirs(common_loops.size(), DepDir::kStar);
  if (r1.is_array && r2.is_array) {
    if (r1.subs.size() != r2.subs.size()) return;  // different shapes: be
                                                   // silent, writer beware
    std::map<std::string, long> combined;
    bool unknown_any = false;
    for (std::size_t d = 0; d < r1.subs.size(); ++d) {
      const DimConstraint c =
          TestDim(*r1.subs[d], *r2.subs[d], common_loops, loop_tree);
      if (c.independent) return;  // provably distinct elements
      if (c.unknown) {
        unknown_any = true;
        continue;
      }
      for (const auto& [var, delta] : c.delta) {
        auto [it, inserted] = combined.try_emplace(var, delta);
        if (!inserted && it->second != delta) return;  // contradictory dims
      }
    }
    if (!unknown_any) {
      for (std::size_t i = 0; i < common_loops.size(); ++i) {
        auto it = combined.find(common_loops[i]->loop_var);
        if (it == combined.end()) {
          // Loop variable absent from every subscript: the same element is
          // touched in every iteration of that loop.
          dirs[i] = DepDir::kStar;
        } else {
          dirs[i] = it->second > 0   ? DepDir::kLt
                    : it->second == 0 ? DepDir::kEq
                                      : DepDir::kGt;
        }
      }
    }
  } else if (r1.is_array != r2.is_array) {
    return;  // scalar vs array of the same name cannot alias in Pf
  }
  // Scalars keep the all-star default: the same cell in every iteration.

  // Normalize: the source must execute first. Find the first non-'='
  // direction; '>' there means the real source is r2's access in an
  // earlier iteration.
  bool swapped = false;
  for (DepDir dir : dirs) {
    if (dir == DepDir::kEq) continue;
    if (dir == DepDir::kGt) swapped = true;
    break;  // kLt and kStar keep the textual order (kStar conservatively)
  }
  if (!swapped && dirs.empty() == false) {
    // All '=' handled below via loop_independent.
  }

  Dependence dep;
  dep.var = r1.name;
  dep.loops = common_loops;
  if (swapped) {
    dep.src = r2.stmt;
    dep.dst = r1.stmt;
    for (DepDir& dir : dirs) {
      if (dir == DepDir::kLt) dir = DepDir::kGt;
      else if (dir == DepDir::kGt) dir = DepDir::kLt;
    }
    dep.kind = KindOf(r2.is_write, r1.is_write);
  } else {
    dep.src = r1.stmt;
    dep.dst = r2.stmt;
    dep.kind = KindOf(r1.is_write, r2.is_write);
  }
  dep.dirs = std::move(dirs);
  dep.loop_independent = true;
  for (DepDir dir : dep.dirs) {
    if (dir != DepDir::kEq) dep.loop_independent = false;
  }
  // A loop-independent "dependence" of a statement on itself is vacuous.
  if (dep.loop_independent && dep.src == dep.dst) return;
  out.push_back(std::move(dep));
}

std::vector<Dependence> ComputeAmong(const std::vector<Stmt*>& stmts,
                                     const LoopTree& loop_tree,
                                     const FlatProgram* flat) {
  std::vector<Ref> refs = CollectRefs(stmts);
  for (Ref& r : refs) {
    const int pos = flat != nullptr ? flat->PositionOf(*r.stmt) : 0;
    r.seq = 2 * pos + (r.is_write ? 1 : 0);
  }

  std::vector<Dependence> deps;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    for (std::size_t j = 0; j < refs.size(); ++j) {
      const Ref& r1 = refs[i];
      const Ref& r2 = refs[j];
      if (r1.name != r2.name) continue;
      if (!r1.is_write && !r2.is_write) continue;
      if (r1.seq > r2.seq) continue;
      if (i == j) continue;
      if (r1.seq == r2.seq && i > j) continue;  // avoid double-counting
      const std::vector<Stmt*> common =
          loop_tree.CommonLoops(*r1.stmt, *r2.stmt);
      TestPair(r1, r2, common, loop_tree, deps);
    }
  }
  return deps;
}

std::vector<Stmt*> StmtsUnder(const Stmt& root) {
  std::vector<Stmt*> stmts;
  ForEachStmt(const_cast<Stmt&>(root), [&stmts](Stmt& s) {
    stmts.push_back(&s);
  });
  return stmts;
}

}  // namespace

std::vector<Dependence> ComputeDependences(Program& program,
                                           const LoopTree& loop_tree) {
  FlatProgram flat = Flatten(program);
  return ComputeAmong(flat.order, loop_tree, &flat);
}

bool InterchangePrevented(Program& program, const LoopTree& loop_tree,
                          const Stmt& outer, const Stmt& inner) {
  (void)program;
  PIVOT_CHECK(IsTightlyNested(outer) && outer.body[0].get() == &inner);
  // Dependences among the statements of the inner body; loop variables are
  // written outside the set, so pure uses of them carry no dependence here.
  std::vector<Stmt*> body_stmts;
  for (const auto& kid : inner.body) {
    const std::vector<Stmt*> sub = StmtsUnder(*kid);
    body_stmts.insert(body_stmts.end(), sub.begin(), sub.end());
  }
  // Interchange permutes the iteration order: any I/O in the body would be
  // emitted in a different order, and a possible trap would strike at a
  // different point of the trace. Either prevents the exchange.
  for (const Stmt* s : body_stmts) {
    if (HasSideEffects(*s) || StmtCanTrap(*s)) return true;
  }
  const std::vector<Dependence> deps =
      ComputeAmong(body_stmts, loop_tree, nullptr);
  for (const Dependence& dep : deps) {
    // A scalar "dependence" on the control variable of a loop nested
    // inside the body is iteration-private: the do node reinitializes it
    // before every read, so interchanging the enclosing pair cannot
    // violate it.
    bool local_induction = false;
    for (const Stmt* s : body_stmts) {
      if (s->kind == StmtKind::kDo && s->loop_var == dep.var &&
          IsAncestorOf(*s, *dep.src) && IsAncestorOf(*s, *dep.dst)) {
        local_induction = true;
        break;
      }
    }
    if (local_induction) continue;
    int outer_pos = -1, inner_pos = -1;
    for (std::size_t i = 0; i < dep.loops.size(); ++i) {
      if (dep.loops[i] == &outer) outer_pos = static_cast<int>(i);
      if (dep.loops[i] == &inner) inner_pos = static_cast<int>(i);
    }
    if (outer_pos == -1 || inner_pos == -1) continue;
    const DepDir od = dep.dirs[static_cast<std::size_t>(outer_pos)];
    const DepDir id = dep.dirs[static_cast<std::size_t>(inner_pos)];
    const bool outer_lt = od == DepDir::kLt || od == DepDir::kStar;
    const bool inner_gt = id == DepDir::kGt || id == DepDir::kStar;
    if (outer_lt && inner_gt) return true;  // (<, >) would be reversed
  }
  return false;
}

bool FusionPrevented(Program& program, const LoopTree& loop_tree,
                     const Stmt& first, const Stmt& second) {
  (void)program;
  PIVOT_CHECK(first.kind == StmtKind::kDo && second.kind == StmtKind::kDo);
  std::vector<Stmt*> body1, body2;
  for (const auto& kid : first.body) {
    const std::vector<Stmt*> sub = StmtsUnder(*kid);
    body1.insert(body1.end(), sub.begin(), sub.end());
  }
  for (const auto& kid : second.body) {
    const std::vector<Stmt*> sub = StmtsUnder(*kid);
    body2.insert(body2.end(), sub.begin(), sub.end());
  }
  const LoopInfo* info1 = loop_tree.InfoOf(first);
  const long trip = info1 != nullptr ? info1->TripCount() : -1;
  return FusionPreventedSets(body1, body2, first.loop_var, second.loop_var,
                             trip);
}

bool FusionPreventedSets(const std::vector<Stmt*>& body1,
                         const std::vector<Stmt*>& body2,
                         const std::string& var1, const std::string& var2,
                         long trip) {
  // Fusion interleaves the two bodies' iterations. That reorders observable
  // events whenever both bodies perform I/O, and reorders a possible trap
  // against the other body's observable effects (or against its own): a
  // trap in the first body originally stops the second body from ever
  // running, and a trap in the second originally happens after all of the
  // first body's output. Any such pairing prevents fusion.
  bool io1 = false, io2 = false, trap1 = false, trap2 = false;
  for (const Stmt* s : body1) {
    io1 = io1 || HasSideEffects(*s);
    trap1 = trap1 || StmtCanTrap(*s);
  }
  for (const Stmt* s : body2) {
    io2 = io2 || HasSideEffects(*s);
    trap2 = trap2 || StmtCanTrap(*s);
  }
  if (io1 && io2) return true;
  if (trap1 && (io2 || trap2)) return true;
  if (trap2 && io1) return true;

  const std::vector<Ref> refs1 = CollectRefs(body1);
  const std::vector<Ref> refs2 = CollectRefs(body2);

  for (const Ref& r1 : refs1) {
    for (const Ref& r2 : refs2) {
      if (r1.name != r2.name) continue;
      if (!r1.is_write && !r2.is_write) continue;
      if (r1.is_array != r2.is_array) continue;
      if (!r1.is_array) return true;  // scalar crossing the loops: be safe
      if (r1.subs.size() != r2.subs.size()) return true;

      // Per dimension: map the second loop's variable onto the first's and
      // compute I1 - I2 for a shared element; fusion is illegal when the
      // first loop's access would land in a *later* fused iteration.
      bool independent = false;
      bool unknown = false;
      bool conflict = false;
      long shared_delta = 0;  // I1 - I2
      bool have_delta = false;
      for (std::size_t d = 0; d < r1.subs.size() && !independent; ++d) {
        AffineForm f1 = ExtractAffine(*r1.subs[d]);
        AffineForm f2 = ExtractAffine(*r2.subs[d]);
        if (!f1.ok || !f2.ok) {
          unknown = true;
          continue;
        }
        // Rename the second loop variable to the first's.
        if (var2 != var1) {
          auto it = f2.coeff.find(var2);
          if (it != f2.coeff.end()) {
            f2.coeff[var1] += it->second;
            f2.coeff.erase(var2);
          }
        }
        long a1 = 0, a2 = 0;
        auto a1_it = f1.coeff.find(var1);
        if (a1_it != f1.coeff.end()) a1 = a1_it->second;
        auto a2_it = f2.coeff.find(var1);
        if (a2_it != f2.coeff.end()) a2 = a2_it->second;
        // Any other differing symbol: unanalyzable.
        std::map<std::string, long> diff = f1.coeff;
        for (const auto& [name, c] : f2.coeff) diff[name] -= c;
        diff.erase(var1);
        for (const auto& [name, c] : diff) {
          (void)name;
          if (c != 0) unknown = true;
        }
        if (unknown) continue;
        if (a1 != a2) {
          unknown = true;
          continue;
        }
        const long c_diff = f1.konst - f2.konst;
        if (a1 == 0) {
          if (c_diff != 0) independent = true;
          continue;  // same element every iteration: delta unconstrained
        }
        if (c_diff % a1 != 0) {
          independent = true;
          continue;
        }
        const long delta = -c_diff / a1;  // I1 - I2 = (c2 - c1) / a
        if (trip >= 0 && std::abs(delta) >= trip) {
          independent = true;
          continue;
        }
        if (have_delta && delta != shared_delta) conflict = true;
        shared_delta = delta;
        have_delta = true;
      }
      if (independent || conflict) continue;
      if (unknown) return true;
      if (have_delta && shared_delta > 0) return true;
      // delta <= 0 (or unconstrained '='): original order survives fusion.
    }
  }
  return false;
}

}  // namespace pivot
