#include "pivot/analysis/pdg.h"

#include <sstream>

#include "pivot/ir/printer.h"
#include "pivot/support/diagnostics.h"

namespace pivot {

Pdg::Pdg(Program& program, std::vector<Dependence> deps)
    : deps_(std::move(deps)) {
  PdgNode root;
  root.kind = PdgNode::Kind::kRegion;
  root.label = "R0";
  root_ = AddNode(std::move(root));
  BuildBody(program.top(), root_);
}

int Pdg::AddNode(PdgNode node) {
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  return id;
}

void Pdg::BuildBody(const std::vector<StmtPtr>& body, int region) {
  for (const auto& stmt_ptr : body) {
    Stmt& stmt = *stmt_ptr;
    PdgNode node;
    node.kind = PdgNode::Kind::kStmt;
    node.stmt = &stmt;
    node.parent = region;
    node.label = "s" + std::to_string(stmt.id.value()) + ": " +
                 StmtHeadToString(stmt);
    const int stmt_node = AddNode(std::move(node));
    nodes_[static_cast<std::size_t>(region)].children.push_back(stmt_node);
    stmt_node_[stmt.id] = stmt_node;

    auto add_region = [&](BodyKind body_kind,
                          const std::vector<StmtPtr>& kids) {
      PdgNode region_node;
      region_node.kind = PdgNode::Kind::kRegion;
      region_node.stmt = &stmt;
      region_node.body = body_kind;
      region_node.parent = stmt_node;
      region_node.label =
          "R(s" + std::to_string(stmt.id.value()) +
          (body_kind == BodyKind::kElse ? ",else)" : ")");
      const int rid = AddNode(std::move(region_node));
      nodes_[static_cast<std::size_t>(stmt_node)].children.push_back(rid);
      region_node_[static_cast<std::uint64_t>(stmt.id.value()) * 2 +
                   (body_kind == BodyKind::kElse ? 1 : 0)] = rid;
      BuildBody(kids, rid);
    };

    if (stmt.kind == StmtKind::kDo) {
      add_region(BodyKind::kMain, stmt.body);
    } else if (stmt.kind == StmtKind::kIf) {
      add_region(BodyKind::kMain, stmt.body);
      add_region(BodyKind::kElse, stmt.else_body);
    }
  }
}

int Pdg::NodeOf(const Stmt& stmt) const {
  auto it = stmt_node_.find(stmt.id);
  PIVOT_CHECK_MSG(it != stmt_node_.end(), "statement has no PDG node");
  return it->second;
}

int Pdg::RegionOf(const Stmt& stmt) const {
  return nodes_[static_cast<std::size_t>(NodeOf(stmt))].parent;
}

int Pdg::RegionFor(const Stmt& owner, BodyKind body) const {
  auto it = region_node_.find(static_cast<std::uint64_t>(owner.id.value()) *
                                  2 +
                              (body == BodyKind::kElse ? 1 : 0));
  PIVOT_CHECK_MSG(it != region_node_.end(), "no region node for body");
  return it->second;
}

int Pdg::Lcr(const Stmt& a, const Stmt& b) const {
  // Collect a's region ancestors, then walk b's upward to the first hit.
  std::vector<int> a_regions;
  for (int node = RegionOf(a); node != -1;
       node = nodes_[static_cast<std::size_t>(node)].parent) {
    if (nodes_[static_cast<std::size_t>(node)].kind ==
        PdgNode::Kind::kRegion) {
      a_regions.push_back(node);
    }
  }
  for (int node = RegionOf(b); node != -1;
       node = nodes_[static_cast<std::size_t>(node)].parent) {
    if (nodes_[static_cast<std::size_t>(node)].kind !=
        PdgNode::Kind::kRegion) {
      continue;
    }
    for (int candidate : a_regions) {
      if (candidate == node) return node;
    }
  }
  return root_;
}

bool Pdg::InSubtree(int region, int node) const {
  for (int cur = node; cur != -1;
       cur = nodes_[static_cast<std::size_t>(cur)].parent) {
    if (cur == region) return true;
  }
  return false;
}

std::string Pdg::ToString() const {
  std::ostringstream os;
  std::function<void(int, int)> dump = [&](int node, int depth) {
    os << std::string(static_cast<std::size_t>(depth) * 2, ' ')
       << nodes_[static_cast<std::size_t>(node)].label << '\n';
    for (int kid : nodes_[static_cast<std::size_t>(node)].children) {
      dump(kid, depth + 1);
    }
  };
  dump(root_, 0);
  if (!deps_.empty()) {
    os << "dependences:\n";
    for (const Dependence& dep : deps_) {
      os << "  " << dep.ToString() << '\n';
    }
  }
  return os.str();
}

}  // namespace pivot
