#include "pivot/analysis/flatten.h"

#include "pivot/support/diagnostics.h"

namespace pivot {

int FlatProgram::PositionOf(const Stmt& stmt) const {
  auto it = pos.find(stmt.id);
  PIVOT_CHECK_MSG(it != pos.end(), "statement not in flat snapshot");
  return it->second;
}

bool FlatProgram::Contains(const Stmt& stmt) const {
  return pos.find(stmt.id) != pos.end();
}

bool FlatProgram::Precedes(const Stmt& a, const Stmt& b) const {
  return PositionOf(a) < PositionOf(b);
}

FlatProgram Flatten(Program& program) {
  FlatProgram flat;
  program.ForEachAttached([&flat](Stmt& s) {
    flat.pos[s.id] = static_cast<int>(flat.order.size());
    flat.order.push_back(&s);
  });
  return flat;
}

}  // namespace pivot
