// Linearization of the statement tree.
//
// Many analyses need "does statement A precede statement B in program
// layout" and a stable enumeration of all attached statements; FlatProgram
// provides both as a pre-order walk snapshot (valid for one program epoch).
#ifndef PIVOT_ANALYSIS_FLATTEN_H_
#define PIVOT_ANALYSIS_FLATTEN_H_

#include <unordered_map>
#include <vector>

#include "pivot/ir/program.h"

namespace pivot {

struct FlatProgram {
  std::vector<Stmt*> order;  // pre-order: a loop precedes its body
  std::unordered_map<StmtId, int> pos;

  int PositionOf(const Stmt& stmt) const;
  bool Contains(const Stmt& stmt) const;
  // True if `a` comes strictly before `b` in layout order.
  bool Precedes(const Stmt& a, const Stmt& b) const;
};

FlatProgram Flatten(Program& program);

}  // namespace pivot

#endif  // PIVOT_ANALYSIS_FLATTEN_H_
