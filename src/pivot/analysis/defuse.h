// Def-use chains derived from reaching definitions.
//
// The dead-code-elimination conditions of the paper's Table 3 are phrased
// in terms of flow dependences "S_i δ S_l"; def-use chains give the
// statement-level answer directly.
#ifndef PIVOT_ANALYSIS_DEFUSE_H_
#define PIVOT_ANALYSIS_DEFUSE_H_

#include <unordered_map>
#include <vector>

#include "pivot/analysis/dataflow.h"

namespace pivot {

class DefUseChains {
 public:
  DefUseChains(const Cfg& cfg, const ProgramFacts& facts,
               const ReachingDefs& reaching);

  // Statements whose uses are (possibly) fed by the definition made at
  // `def_stmt`; empty for non-defining statements.
  const std::vector<Stmt*>& UsesOf(const Stmt& def_stmt) const;
  bool HasUses(const Stmt& def_stmt) const;

 private:
  std::unordered_map<StmtId, std::vector<Stmt*>> uses_of_;
  std::vector<Stmt*> empty_;
};

}  // namespace pivot

#endif  // PIVOT_ANALYSIS_DEFUSE_H_
