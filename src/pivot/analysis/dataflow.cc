#include "pivot/analysis/dataflow.h"

#include <algorithm>

#include "pivot/support/diagnostics.h"

namespace pivot {

int NameTable::Intern(const std::string& name) {
  auto [it, inserted] = index_.try_emplace(name, static_cast<int>(names_.size()));
  if (inserted) names_.push_back(name);
  return it->second;
}

int NameTable::Lookup(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

const std::string& NameTable::NameOf(int index) const {
  PIVOT_CHECK(index >= 0 && static_cast<std::size_t>(index) < names_.size());
  return names_[static_cast<std::size_t>(index)];
}

NodeFacts ComputeNodeFacts(const Stmt& stmt, NameTable& names) {
  NodeFacts nf;
  std::vector<std::string> reads;
  CollectReadNames(stmt, reads);
  if (stmt.kind == StmtKind::kDo) {
    nf.strong_def = names.Intern(stmt.loop_var);
  } else if ((stmt.kind == StmtKind::kAssign ||
              stmt.kind == StmtKind::kRead) &&
             stmt.lhs != nullptr) {
    const int name = names.Intern(stmt.lhs->name);
    if (stmt.lhs->kind == ExprKind::kVarRef) {
      nf.strong_def = name;
    } else {
      nf.weak_def = name;
    }
  }
  for (const auto& r : reads) nf.uses.push_back(names.Intern(r));
  std::sort(nf.uses.begin(), nf.uses.end());
  nf.uses.erase(std::unique(nf.uses.begin(), nf.uses.end()), nf.uses.end());
  return nf;
}

ProgramFacts ComputeFacts(const Cfg& cfg) {
  ProgramFacts facts;
  facts.node_facts.resize(cfg.nodes.size());
  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    const CfgNode& node = cfg.nodes[n];
    if (node.kind != CfgNode::Kind::kStmt) continue;
    facts.node_facts[n] = ComputeNodeFacts(*node.stmt, facts.names);
  }
  return facts;
}

// --- Reaching definitions ---

ReachingDefs::ReachingDefs(const Cfg& cfg, const ProgramFacts& facts)
    : cfg_(cfg), facts_(facts) {
  // Enumerate definitions: one per defining CFG node.
  std::vector<int> def_of_node(cfg.nodes.size(), -1);
  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    const NodeFacts& nf = facts.node_facts[n];
    if (nf.strong_def == -1 && nf.weak_def == -1) continue;
    Definition def;
    def.stmt = cfg.nodes[n].stmt;
    def.weak = nf.strong_def == -1;
    def.name = def.weak ? nf.weak_def : nf.strong_def;
    def_of_node[n] = static_cast<int>(defs_.size());
    defs_.push_back(def);
  }
  // Entry pseudo-definitions: one per name, generated at the entry node
  // and killed by any strong definition of the name.
  std::vector<int> entry_defs;
  for (int name = 0; name < static_cast<int>(facts.names.size()); ++name) {
    Definition def;
    def.name = name;
    def.entry = true;
    entry_defs.push_back(static_cast<int>(defs_.size()));
    defs_.push_back(def);
  }

  const std::size_t num_defs = defs_.size();
  std::vector<DenseBitset> gen(cfg.nodes.size(), DenseBitset(num_defs));
  std::vector<DenseBitset> kill(cfg.nodes.size(), DenseBitset(num_defs));
  std::vector<DenseBitset> out(cfg.nodes.size(), DenseBitset(num_defs));
  in_.assign(cfg.nodes.size(), DenseBitset(num_defs));

  for (int d : entry_defs) {
    gen[static_cast<std::size_t>(cfg.entry)].Set(static_cast<std::size_t>(d));
  }
  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    const int d = def_of_node[n];
    if (d == -1) continue;
    gen[n].Set(static_cast<std::size_t>(d));
    if (!defs_[static_cast<std::size_t>(d)].weak) {
      // A strong (scalar) definition kills every other definition of the
      // same name (the entry pseudo-definition included).
      for (std::size_t other = 0; other < num_defs; ++other) {
        if (defs_[other].name == defs_[static_cast<std::size_t>(d)].name &&
            static_cast<int>(other) != d) {
          kill[n].Set(other);
        }
      }
    }
  }

  const std::vector<int> rpo = cfg.ReversePostOrder();
  bool changed = true;
  while (changed) {
    changed = false;
    for (int node : rpo) {
      const std::size_t n = static_cast<std::size_t>(node);
      DenseBitset new_in(num_defs);
      for (int pred : cfg.nodes[n].preds) {
        new_in.UnionWith(out[static_cast<std::size_t>(pred)]);
      }
      in_[n] = std::move(new_in);
      if (DenseBitset::Transfer(in_[n], gen[n], kill[n], out[n])) {
        changed = true;
      }
    }
  }
}

std::vector<const Definition*> ReachingDefs::DefsReaching(
    const Stmt& use_stmt, const std::string& name) const {
  std::vector<const Definition*> result;
  const int name_id = facts_.names.Lookup(name);
  if (name_id == -1) return result;
  const std::size_t n = static_cast<std::size_t>(cfg_.NodeOf(use_stmt));
  for (std::size_t d : in_[n].ToIndices()) {
    if (defs_[d].name == name_id) result.push_back(&defs_[d]);
  }
  return result;
}

bool ReachingDefs::OnlyReachingDef(const Stmt& def_stmt, const Stmt& use_stmt,
                                   const std::string& name) const {
  const std::vector<const Definition*> reaching =
      DefsReaching(use_stmt, name);
  return reaching.size() == 1 && reaching[0]->stmt == &def_stmt;
}

// --- Liveness ---

Liveness::Liveness(const Cfg& cfg, const ProgramFacts& facts)
    : cfg_(cfg), facts_(facts) {
  const std::size_t num_names = facts.names.size();
  std::vector<DenseBitset> use(cfg.nodes.size(), DenseBitset(num_names));
  std::vector<DenseBitset> def(cfg.nodes.size(), DenseBitset(num_names));
  live_in_.assign(cfg.nodes.size(), DenseBitset(num_names));
  live_out_.assign(cfg.nodes.size(), DenseBitset(num_names));

  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    const NodeFacts& nf = facts.node_facts[n];
    for (int u : nf.uses) use[n].Set(static_cast<std::size_t>(u));
    // Only strong defs kill liveness; writing one array element leaves the
    // rest of the array live.
    if (nf.strong_def != -1) def[n].Set(static_cast<std::size_t>(nf.strong_def));
  }

  // Backward may-analysis: iterate in post-order-ish order (reverse RPO).
  std::vector<int> order = cfg.ReversePostOrder();
  std::reverse(order.begin(), order.end());
  bool changed = true;
  while (changed) {
    changed = false;
    for (int node : order) {
      const std::size_t n = static_cast<std::size_t>(node);
      DenseBitset new_out(num_names);
      for (int succ : cfg.nodes[n].succs) {
        new_out.UnionWith(live_in_[static_cast<std::size_t>(succ)]);
      }
      live_out_[n] = std::move(new_out);
      if (DenseBitset::Transfer(live_out_[n], use[n], def[n], live_in_[n])) {
        changed = true;
      }
    }
  }
}

bool Liveness::LiveIn(const Stmt& stmt, const std::string& name) const {
  const int id = facts_.names.Lookup(name);
  if (id == -1) return false;
  return live_in_[static_cast<std::size_t>(cfg_.NodeOf(stmt))].Test(
      static_cast<std::size_t>(id));
}

bool Liveness::LiveOut(const Stmt& stmt, const std::string& name) const {
  const int id = facts_.names.Lookup(name);
  if (id == -1) return false;
  return live_out_[static_cast<std::size_t>(cfg_.NodeOf(stmt))].Test(
      static_cast<std::size_t>(id));
}

bool Liveness::IsDeadStore(const Stmt& stmt) const {
  if (stmt.kind != StmtKind::kAssign || stmt.lhs == nullptr ||
      stmt.lhs->kind != ExprKind::kVarRef) {
    return false;
  }
  return !LiveOut(stmt, stmt.lhs->name);
}

// --- Available expressions ---

namespace {

// The paper's CSE pattern: a binary expression whose operands are scalar
// variables or constants.
bool IsCseCandidateExpr(const Expr& e) {
  if (e.kind != ExprKind::kBinary) return false;
  for (const auto& kid : e.kids) {
    if (kid->kind != ExprKind::kVarRef && !IsConst(*kid)) return false;
  }
  return true;
}

}  // namespace

AvailExprs::AvailExprs(const Cfg& cfg, const ProgramFacts& facts)
    : cfg_(cfg) {
  // Universe: structurally distinct candidate RHS expressions.
  for (const CfgNode& node : cfg.nodes) {
    if (node.kind != CfgNode::Kind::kStmt) continue;
    const Stmt& stmt = *node.stmt;
    if (stmt.kind != StmtKind::kAssign || !IsCseCandidateExpr(*stmt.rhs)) {
      continue;
    }
    if (ClassOf(*stmt.rhs) == -1) universe_.push_back(stmt.rhs.get());
  }

  const std::size_t num = universe_.size();
  std::vector<DenseBitset> gen(cfg.nodes.size(), DenseBitset(num));
  std::vector<DenseBitset> kill(cfg.nodes.size(), DenseBitset(num));
  std::vector<DenseBitset> out(cfg.nodes.size(), DenseBitset(num));
  in_.assign(cfg.nodes.size(), DenseBitset(num));

  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    const CfgNode& node = cfg.nodes[n];
    const NodeFacts& nf = facts.node_facts[n];
    if (nf.strong_def != -1) {
      const std::string& killed = facts.names.NameOf(nf.strong_def);
      for (std::size_t c = 0; c < num; ++c) {
        if (ExprReadsName(*universe_[c], killed)) kill[n].Set(c);
      }
    }
    if (node.kind == CfgNode::Kind::kStmt &&
        node.stmt->kind == StmtKind::kAssign &&
        IsCseCandidateExpr(*node.stmt->rhs)) {
      const int cls = ClassOf(*node.stmt->rhs);
      // The computation is generated unless the statement immediately kills
      // its own value (target is one of the operands).
      if (cls != -1 && !kill[n].Test(static_cast<std::size_t>(cls))) {
        gen[n].Set(static_cast<std::size_t>(cls));
      }
    }
    // Must-analysis initialization: everything available everywhere except
    // entry, refined downward.
    if (static_cast<int>(n) != cfg.entry) out[n].SetAll();
  }

  const std::vector<int> rpo = cfg.ReversePostOrder();
  bool changed = true;
  while (changed) {
    changed = false;
    for (int node : rpo) {
      const std::size_t n = static_cast<std::size_t>(node);
      if (node == cfg.entry) continue;
      DenseBitset new_in(num);
      const auto& preds = cfg.nodes[n].preds;
      if (!preds.empty()) {
        new_in.SetAll();
        for (int pred : preds) {
          new_in.IntersectWith(out[static_cast<std::size_t>(pred)]);
        }
      }
      in_[n] = std::move(new_in);
      if (DenseBitset::Transfer(in_[n], gen[n], kill[n], out[n])) {
        changed = true;
      }
    }
  }
}

int AvailExprs::ClassOf(const Expr& e) const {
  for (std::size_t c = 0; c < universe_.size(); ++c) {
    if (ExprEquals(*universe_[c], e)) return static_cast<int>(c);
  }
  return -1;
}

const Expr& AvailExprs::Representative(int cls) const {
  PIVOT_CHECK(cls >= 0 &&
              static_cast<std::size_t>(cls) < universe_.size());
  return *universe_[static_cast<std::size_t>(cls)];
}

bool AvailExprs::AvailableAt(const Stmt& stmt, int cls) const {
  if (cls < 0) return false;
  return in_[static_cast<std::size_t>(cfg_.NodeOf(stmt))].Test(
      static_cast<std::size_t>(cls));
}

// --- ReachesIntact ---

bool ReachesIntact(const Cfg& cfg, const ProgramFacts& facts,
                   const Stmt& from, const Stmt& to,
                   const std::vector<int>& watched) {
  const int from_node = cfg.NodeOf(from);
  const int to_node = cfg.NodeOf(to);
  const std::size_t n = cfg.nodes.size();

  auto kills = [&](std::size_t node) {
    const int def = facts.node_facts[node].strong_def;
    if (def == -1) return false;
    return std::find(watched.begin(), watched.end(), def) != watched.end();
  };

  // Forward must-analysis over a single bit: "the value established at
  // `from` is valid here". Initialize optimistically to true and refine.
  std::vector<char> in(n, 1), out(n, 1);
  in[static_cast<std::size_t>(cfg.entry)] = 0;
  out[static_cast<std::size_t>(cfg.entry)] = 0;

  const std::vector<int> rpo = cfg.ReversePostOrder();
  bool changed = true;
  while (changed) {
    changed = false;
    for (int node : rpo) {
      const std::size_t i = static_cast<std::size_t>(node);
      char new_in = 1;
      if (node == cfg.entry) {
        new_in = 0;
      } else {
        for (int pred : cfg.nodes[i].preds) {
          new_in = static_cast<char>(new_in &&
                                     out[static_cast<std::size_t>(pred)]);
        }
        if (cfg.nodes[i].preds.empty()) new_in = 0;  // unreachable
      }
      char new_out;
      if (node == from_node) {
        new_out = 1;  // the establishing statement regenerates the value
      } else if (kills(i)) {
        new_out = 0;
      } else {
        new_out = new_in;
      }
      if (new_in != in[i] || new_out != out[i]) {
        in[i] = new_in;
        out[i] = new_out;
        changed = true;
      }
    }
  }
  return in[static_cast<std::size_t>(to_node)] != 0;
}

}  // namespace pivot
