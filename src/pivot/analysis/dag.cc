#include "pivot/analysis/dag.h"

#include <algorithm>
#include <sstream>

#include "pivot/support/diagnostics.h"

namespace pivot {
namespace {

bool IsSimple(const Stmt& stmt) {
  return stmt.kind == StmtKind::kAssign || stmt.kind == StmtKind::kRead ||
         stmt.kind == StmtKind::kWrite;
}

void CollectBlocksIn(const std::vector<StmtPtr>& body,
                     std::vector<BasicBlock>& out) {
  BasicBlock current;
  auto flush = [&] {
    if (!current.stmts.empty()) {
      out.push_back(std::move(current));
      current = BasicBlock{};
    }
  };
  for (const auto& stmt_ptr : body) {
    Stmt& stmt = *stmt_ptr;
    if (IsSimple(stmt)) {
      current.stmts.push_back(&stmt);
      continue;
    }
    flush();
    CollectBlocksIn(stmt.body, out);
    CollectBlocksIn(stmt.else_body, out);
  }
  flush();
}

}  // namespace

std::vector<BasicBlock> CollectBasicBlocks(Program& program) {
  std::vector<BasicBlock> blocks;
  CollectBlocksIn(program.top(), blocks);
  return blocks;
}

const BlockDag* BlockDags::DagOf(const Stmt& stmt) const {
  auto it = block_of.find(stmt.id);
  if (it == block_of.end()) return nullptr;
  return dags[static_cast<std::size_t>(it->second)].get();
}

BlockDags BuildBlockDags(Program& program) {
  BlockDags result;
  result.blocks = CollectBasicBlocks(program);
  result.dags.reserve(result.blocks.size());
  for (std::size_t b = 0; b < result.blocks.size(); ++b) {
    result.dags.push_back(std::make_shared<const BlockDag>(result.blocks[b]));
    for (const Stmt* stmt : result.blocks[b].stmts) {
      result.block_of[stmt->id] = static_cast<int>(b);
    }
  }
  return result;
}

bool SameBlockStmts(const BasicBlock& a, const BasicBlock& b) {
  return a.stmts == b.stmts;
}

BlockDag::BlockDag(const BasicBlock& block) {
  for (Stmt* stmt : block.stmts) {
    switch (stmt->kind) {
      case StmtKind::kAssign: {
        const std::size_t before = nodes_.size();
        const int value = Build(*stmt->rhs);
        value_of_[stmt->id] = value;
        if (nodes_.size() == before &&
            nodes_[static_cast<std::size_t>(value)].kind ==
                DagNode::Kind::kOp) {
          reused_.push_back(stmt);  // RHS hit an existing op node
        }
        if (stmt->lhs->kind == ExprKind::kVarRef) {
          // Retarget the name: remove the old label, add the new one.
          for (auto& node : nodes_) {
            auto it = std::find(node.labels.begin(), node.labels.end(),
                                stmt->lhs->name);
            if (it != node.labels.end()) node.labels.erase(it);
          }
          nodes_[static_cast<std::size_t>(value)].labels.push_back(
              stmt->lhs->name);
          current_[stmt->lhs->name] = value;
        }
        // Array-element stores invalidate value numbering of the array.
        if (stmt->lhs->kind == ExprKind::kArrayRef) {
          current_.erase(stmt->lhs->name);
        }
        break;
      }
      case StmtKind::kRead:
        // A read produces an unknown value: fresh leaf.
        if (stmt->lhs->kind == ExprKind::kVarRef) {
          DagNode leaf;
          leaf.kind = DagNode::Kind::kLeafVar;
          leaf.var = stmt->lhs->name + "$in";
          leaf.labels.push_back(stmt->lhs->name);
          nodes_.push_back(std::move(leaf));
          current_[stmt->lhs->name] = static_cast<int>(nodes_.size()) - 1;
        }
        break;
      case StmtKind::kWrite:
        value_of_[stmt->id] = Build(*stmt->rhs);
        break;
      default:
        PIVOT_UNREACHABLE("non-simple statement in a basic block");
    }
  }
}

int BlockDag::ValueOf(const Stmt& stmt) const {
  auto it = value_of_.find(stmt.id);
  return it == value_of_.end() ? -1 : it->second;
}

int BlockDag::Leaf(const std::string& var) {
  auto it = current_.find(var);
  if (it != current_.end()) return it->second;
  DagNode leaf;
  leaf.kind = DagNode::Kind::kLeafVar;
  leaf.var = var;
  nodes_.push_back(std::move(leaf));
  const int id = static_cast<int>(nodes_.size()) - 1;
  current_[var] = id;
  return id;
}

int BlockDag::Const(double value) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == DagNode::Kind::kLeafConst &&
        nodes_[i].const_value == value) {
      return static_cast<int>(i);
    }
  }
  DagNode leaf;
  leaf.kind = DagNode::Kind::kLeafConst;
  leaf.const_value = value;
  nodes_.push_back(std::move(leaf));
  return static_cast<int>(nodes_.size()) - 1;
}

int BlockDag::Build(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntConst:
      return Const(static_cast<double>(e.ival));
    case ExprKind::kRealConst:
      return Const(e.rval);
    case ExprKind::kVarRef:
      return Leaf(e.name);
    case ExprKind::kArrayRef: {
      // Element reads are not value-numbered (subscripts may alias); model
      // each as a fresh leaf named by its source form.
      DagNode leaf;
      leaf.kind = DagNode::Kind::kLeafVar;
      leaf.var = ExprToString(e);
      nodes_.push_back(std::move(leaf));
      return static_cast<int>(nodes_.size()) - 1;
    }
    case ExprKind::kUnary: {
      const int zero = Const(0.0);
      const int kid = Build(*e.kids[0]);
      return FindOrAddOp(BinOp::kSub, {zero, kid});
    }
    case ExprKind::kBinary: {
      const int l = Build(*e.kids[0]);
      const int r = Build(*e.kids[1]);
      return FindOrAddOp(e.bin, {l, r});
    }
  }
  PIVOT_UNREACHABLE("expression kind");
}

int BlockDag::FindOrAddOp(BinOp op, std::vector<int> kids) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == DagNode::Kind::kOp && nodes_[i].op == op &&
        nodes_[i].kids == kids) {
      return static_cast<int>(i);
    }
  }
  DagNode node;
  node.kind = DagNode::Kind::kOp;
  node.op = op;
  node.kids = std::move(kids);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

std::string BlockDag::ToString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const DagNode& node = nodes_[i];
    os << "n" << i << ": ";
    switch (node.kind) {
      case DagNode::Kind::kLeafVar: os << node.var; break;
      case DagNode::Kind::kLeafConst: os << node.const_value; break;
      case DagNode::Kind::kOp:
        os << BinOpToString(node.op) << "(";
        for (std::size_t k = 0; k < node.kids.size(); ++k) {
          if (k != 0) os << ", ";
          os << "n" << node.kids[k];
        }
        os << ")";
        break;
    }
    if (!node.labels.empty()) {
      os << "  [";
      for (std::size_t k = 0; k < node.labels.size(); ++k) {
        if (k != 0) os << ", ";
        os << node.labels[k];
      }
      os << "]";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace pivot
