// Iterative data-flow analyses over the statement-level CFG.
//
// Three classic bit-vector problems (reaching definitions, live variables,
// available expressions) plus ReachesIntact, a per-query forward *must*
// analysis used by the legality checks of CSE / constant propagation / copy
// propagation: "does control on every path to `to` pass through `from`
// with none of the watched names redefined afterwards?".
//
// Array semantics: an assignment to an array element is a *weak* definition
// of the array name — it generates a definition but kills nothing, and for
// liveness it never makes the array dead. Scalars are strong.
#ifndef PIVOT_ANALYSIS_DATAFLOW_H_
#define PIVOT_ANALYSIS_DATAFLOW_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "pivot/analysis/cfg.h"
#include "pivot/support/bitset.h"

namespace pivot {

// Interned variable/array names.
class NameTable {
 public:
  int Intern(const std::string& name);
  // -1 when the name was never interned.
  int Lookup(const std::string& name) const;
  const std::string& NameOf(int index) const;
  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int> index_;
};

// What a single CFG node defines and uses. Shared by all the solvers.
struct NodeFacts {
  int strong_def = -1;           // scalar name defined (kills), or -1
  int weak_def = -1;             // array name defined (no kill), or -1
  std::vector<int> uses;         // names read
};

// Per-node def/use facts for a whole CFG (names interned into `names`).
struct ProgramFacts {
  NameTable names;
  std::vector<NodeFacts> node_facts;  // indexed by CFG node
};
ProgramFacts ComputeFacts(const Cfg& cfg);

// The block-local fact of one statement, interning into `names`. This is
// the unit the incremental analysis cache recomputes for dirty nodes only,
// reseeding the global data-flow solvers from the unchanged remainder.
// Note the name table is append-only: a name that disappears from the
// program stays interned (its fact bits simply never get set again), so
// refreshed facts stay index-compatible with retained ones.
NodeFacts ComputeNodeFacts(const Stmt& stmt, NameTable& names);

// --- Reaching definitions (forward, may) ---
struct Definition {
  Stmt* stmt = nullptr;  // assign/read statement or do (loop variable);
                         // null for the entry pseudo-definition
  int name = -1;
  bool weak = false;     // array-element definition
  // Every name carries an implicit definition at program entry (Pf reads
  // uninitialized storage as 0). Without it, a real definition on one
  // branch would falsely count as the "only" one reaching a join that
  // other def-free paths also reach.
  bool entry = false;
};

class ReachingDefs {
 public:
  ReachingDefs(const Cfg& cfg, const ProgramFacts& facts);

  const std::vector<Definition>& defs() const { return defs_; }

  // Definitions of `name` reaching the entry of `use_stmt`'s node.
  std::vector<const Definition*> DefsReaching(const Stmt& use_stmt,
                                              const std::string& name) const;

  // True if the *only* definition of `name` reaching `use_stmt` is the one
  // made by `def_stmt` (the precise legality core of constant propagation).
  bool OnlyReachingDef(const Stmt& def_stmt, const Stmt& use_stmt,
                       const std::string& name) const;

 private:
  const Cfg& cfg_;
  const ProgramFacts& facts_;
  std::vector<Definition> defs_;
  std::vector<DenseBitset> in_;
};

// --- Live variables (backward, may) ---
class Liveness {
 public:
  Liveness(const Cfg& cfg, const ProgramFacts& facts);

  bool LiveIn(const Stmt& stmt, const std::string& name) const;
  bool LiveOut(const Stmt& stmt, const std::string& name) const;

  // True when the scalar assignment `stmt` computes a value nobody reads:
  // the dead-code-elimination pre-condition (¬∃ S_l with S_i δ S_l).
  bool IsDeadStore(const Stmt& stmt) const;

 private:
  const Cfg& cfg_;
  const ProgramFacts& facts_;
  std::vector<DenseBitset> live_in_;
  std::vector<DenseBitset> live_out_;
};

// --- Available expressions (forward, must) ---
// The universe is every binary full-RHS expression over scalar variables /
// constants, matching the paper's CSE pattern "S_i: A = B op C".
class AvailExprs {
 public:
  AvailExprs(const Cfg& cfg, const ProgramFacts& facts);

  // Index of the expression class structurally equal to `e`, or -1.
  int ClassOf(const Expr& e) const;
  // A representative expression of the class.
  const Expr& Representative(int cls) const;
  std::size_t NumClasses() const { return universe_.size(); }

  // Is class `cls` available on entry to `stmt`'s node?
  bool AvailableAt(const Stmt& stmt, int cls) const;

 private:
  const Cfg& cfg_;
  std::vector<const Expr*> universe_;
  std::vector<DenseBitset> in_;
};

// --- Per-query path check ---
// True iff every path from entry to (the entry of) `to` passes through
// `from`, and after the last such pass none of the names in `watched`
// (name-table indices into facts.names) is strongly redefined by a node
// other than `from` itself. This is the legality core of CSE and copy
// propagation; it subsumes the dominance requirement.
bool ReachesIntact(const Cfg& cfg, const ProgramFacts& facts,
                   const Stmt& from, const Stmt& to,
                   const std::vector<int>& watched);

}  // namespace pivot

#endif  // PIVOT_ANALYSIS_DATAFLOW_H_
