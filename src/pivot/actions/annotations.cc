#include "pivot/actions/annotations.h"

#include <algorithm>
#include <sstream>

#include "pivot/ir/printer.h"

namespace pivot {

std::string Annotation::ToString() const {
  std::ostringstream os;
  os << ActionKindShorthand(kind) << "_" << stamp;
  return os.str();
}

namespace {

// Keep each node's annotations sorted by action id. Live appends are
// already in action order, but a transaction rollback can legitimately
// restore an earlier action's annotation after later ones exist; sorted
// insertion keeps the rendering canonical either way.
void InsertSorted(std::vector<Annotation>& annos, const Annotation& anno) {
  auto it = std::upper_bound(annos.begin(), annos.end(), anno,
                             [](const Annotation& a, const Annotation& b) {
                               return a.action.value() < b.action.value();
                             });
  annos.insert(it, anno);
}

}  // namespace

void AnnotationMap::AddStmt(StmtId stmt, const Annotation& anno) {
  InsertSorted(stmt_annos_[stmt], anno);
}

void AnnotationMap::AddExpr(ExprId expr, const Annotation& anno) {
  InsertSorted(expr_annos_[expr], anno);
}

void AnnotationMap::RemoveAction(ActionId action) {
  auto strip = [action](auto& map) {
    for (auto it = map.begin(); it != map.end();) {
      auto& annos = it->second;
      annos.erase(std::remove_if(annos.begin(), annos.end(),
                                 [action](const Annotation& a) {
                                   return a.action == action;
                                 }),
                  annos.end());
      it = annos.empty() ? map.erase(it) : std::next(it);
    }
  };
  strip(stmt_annos_);
  strip(expr_annos_);
}

const std::vector<Annotation>& AnnotationMap::OfStmt(StmtId stmt) const {
  auto it = stmt_annos_.find(stmt);
  return it == stmt_annos_.end() ? empty_ : it->second;
}

const std::vector<Annotation>& AnnotationMap::OfExpr(ExprId expr) const {
  auto it = expr_annos_.find(expr);
  return it == expr_annos_.end() ? empty_ : it->second;
}

const Annotation* AnnotationMap::TopOfExpr(ExprId expr) const {
  const auto& annos = OfExpr(expr);
  return annos.empty() ? nullptr : &annos.back();
}

const Annotation* AnnotationMap::TopOfStmt(StmtId stmt) const {
  const auto& annos = OfStmt(stmt);
  return annos.empty() ? nullptr : &annos.back();
}

void AnnotationMap::ForEachStmtAnno(
    const std::function<void(StmtId, const Annotation&)>& fn) const {
  for (const auto& [id, annos] : stmt_annos_) {
    for (const Annotation& a : annos) fn(id, a);
  }
}

void AnnotationMap::ForEachExprAnno(
    const std::function<void(ExprId, const Annotation&)>& fn) const {
  for (const auto& [id, annos] : expr_annos_) {
    for (const Annotation& a : annos) fn(id, a);
  }
}

std::size_t AnnotationMap::TotalCount() const {
  std::size_t count = 0;
  for (const auto& [id, annos] : stmt_annos_) count += annos.size();
  for (const auto& [id, annos] : expr_annos_) count += annos.size();
  return count;
}

std::string AnnotationMap::Render(const Program& program) const {
  std::ostringstream os;
  // Sorted by id for deterministic output.
  std::vector<StmtId> stmt_ids;
  for (const auto& [id, annos] : stmt_annos_) stmt_ids.push_back(id);
  std::sort(stmt_ids.begin(), stmt_ids.end());
  for (StmtId id : stmt_ids) {
    os << "s" << id.value();
    const Stmt* stmt = program.FindStmt(id);
    if (stmt != nullptr) {
      os << " (" << StmtHeadToString(*stmt)
         << (stmt->attached ? "" : ", detached") << ")";
    }
    os << ":";
    for (const Annotation& a : OfStmt(id)) os << ' ' << a.ToString();
    os << '\n';
  }
  std::vector<ExprId> expr_ids;
  for (const auto& [id, annos] : expr_annos_) expr_ids.push_back(id);
  std::sort(expr_ids.begin(), expr_ids.end());
  for (ExprId id : expr_ids) {
    os << "e" << id.value();
    const Expr* expr = program.FindExpr(id);
    if (expr != nullptr) {
      os << " (" << ExprToString(*expr)
         << (expr->owner != nullptr ? "" : ", detached") << ")";
    }
    os << ":";
    for (const Annotation& a : OfExpr(id)) os << ' ' << a.ToString();
    os << '\n';
  }
  return os.str();
}

}  // namespace pivot
