#include "pivot/actions/location.h"

#include <algorithm>
#include <sstream>

#include "pivot/support/diagnostics.h"

namespace pivot {

namespace {

Location Capture(Program& program, Stmt* parent, BodyKind body,
                 std::size_t index, StmtId exclude) {
  Location loc;
  loc.parent = parent != nullptr ? parent->id : kNoStmt;
  loc.body = body;
  const std::vector<StmtPtr>& list = program.BodyListOf(parent, body);
  index = std::min(index, list.size());
  loc.index = static_cast<int>(index);
  // All siblings before the slot, nearest first.
  for (std::size_t i = index; i-- > 0;) {
    loc.preceding.push_back(list[i]->id);
  }
  // All siblings after the slot, nearest first; when capturing the
  // location *of* a statement (`exclude`), that statement occupies the
  // slot itself and is skipped.
  for (std::size_t i = index; i < list.size(); ++i) {
    if (list[i]->id != exclude) loc.following.push_back(list[i]->id);
  }
  if (!loc.preceding.empty()) loc.before = loc.preceding.front();
  if (!loc.following.empty()) loc.after = loc.following.front();
  return loc;
}

}  // namespace

Location CaptureLocationOf(Program& program, const Stmt& stmt) {
  PIVOT_CHECK(stmt.attached);
  const std::size_t index = program.IndexOf(stmt);
  return Capture(program, stmt.parent, stmt.parent_body, index, stmt.id);
}

Location CaptureInsertionPoint(Program& program, Stmt* parent, BodyKind body,
                               std::size_t index) {
  return Capture(program, parent, body, index, kNoStmt);
}

std::optional<ResolvedLocation> ResolveLocation(Program& program,
                                                const Location& loc,
                                                StmtId self) {
  Stmt* parent = nullptr;
  if (loc.parent.valid()) {
    parent = program.FindStmt(loc.parent);
    if (parent == nullptr || !parent->attached) return std::nullopt;
    if (parent->kind != StmtKind::kDo && parent->kind != StmtKind::kIf) {
      return std::nullopt;
    }
  }
  const std::vector<StmtPtr>& list = program.BodyListOf(parent, loc.body);

  ResolvedLocation resolved;
  resolved.parent = parent;
  resolved.body = loc.body;

  auto index_of = [&list](StmtId id) -> std::optional<std::size_t> {
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i]->id == id) return i;
    }
    return std::nullopt;
  };

  // The nearest *surviving* sibling on each side bounds the slot; the
  // uncertain window between them (siblings restored earlier, newcomers)
  // is ordered by statement id, which reflects original textual order.
  std::optional<std::size_t> pred_idx;
  for (StmtId id : loc.preceding) {
    if ((pred_idx = index_of(id))) break;
  }
  std::optional<std::size_t> foll_idx;
  for (StmtId id : loc.following) {
    if ((foll_idx = index_of(id))) break;
  }

  const std::size_t window_lo = pred_idx ? *pred_idx + 1 : 0;
  const std::size_t window_hi = foll_idx ? *foll_idx : list.size();
  if (window_lo > window_hi) {
    // Anchors crossed (siblings were reordered around the slot): fall back
    // to the predecessor side.
    resolved.index = std::min(window_lo, list.size());
    return resolved;
  }
  // Subtree proxies: an occupant that now *contains* one of the recorded
  // preceding siblings (e.g. a strip-mining loop wrapped around it) stands
  // in for that predecessor and must stay in front; one containing a
  // recorded following sibling must stay behind.
  auto contains_any = [&program](const Stmt& root,
                                 const std::vector<StmtId>& ids) {
    for (StmtId id : ids) {
      const Stmt* stmt = program.FindStmt(id);
      if (stmt != nullptr && stmt->attached && IsAncestorOf(root, *stmt)) {
        return true;
      }
    }
    return false;
  };

  // Id-order ranking of an occupant: the *oldest* statement anywhere in
  // its subtree. A restructuring wrapper (strip-mining outer loop, fused
  // loop) is itself a new, high-id statement, but it stands where the
  // original statement it wraps stood — and that one keeps its low id even
  // across the wrapper being undone and re-created. Comparing bare
  // occupant ids would misplace restored siblings behind such wrappers.
  auto min_id_in_subtree = [](const Stmt& root) {
    StmtId min_id = root.id;
    ForEachStmt(root, [&min_id](const Stmt& s) {
      if (s.id < min_id) min_id = s.id;
    });
    return min_id;
  };

  std::size_t pos = window_lo;
  while (pos < window_hi) {
    const Stmt& occupant = *list[pos];
    if (contains_any(occupant, loc.following)) break;
    if (contains_any(occupant, loc.preceding)) {
      ++pos;
      continue;
    }
    if (self.valid() && min_id_in_subtree(occupant) < self) {
      ++pos;
      continue;
    }
    break;
  }
  if (!pred_idx && !foll_idx && loc.preceding.empty() &&
      loc.following.empty()) {
    // The slot had no siblings at all: the raw index (clamped) is the only
    // information available.
    pos = std::min(static_cast<std::size_t>(std::max(loc.index, 0)),
                   list.size());
  }
  resolved.index = pos;
  return resolved;
}

std::string LocationToString(const Location& loc) {
  std::ostringstream os;
  os << "(parent=";
  if (loc.parent.valid()) {
    os << "s" << loc.parent.value();
  } else {
    os << "top";
  }
  os << (loc.body == BodyKind::kElse ? ",else" : "") << ", index="
     << loc.index << ")";
  return os.str();
}

}  // namespace pivot
