// Anchored statement locations.
//
// Primitive actions record where a statement used to live so that inverse
// actions can put it back (Table 1: Delete's inverse is
// Add(orig_location, -, a)). A Location captures the parent region, the
// body, the index, and the neighbouring statement ids at capture time; when
// resolving much later, surviving neighbours take precedence over the raw
// index so that unrelated insertions/removals in the same body do not skew
// the restoration point.
#ifndef PIVOT_ACTIONS_LOCATION_H_
#define PIVOT_ACTIONS_LOCATION_H_

#include <optional>
#include <string>

#include "pivot/ir/program.h"

namespace pivot {

struct Location {
  StmtId parent;           // kNoStmt = top level
  BodyKind body = BodyKind::kMain;
  int index = 0;           // position in the body list at capture time
  StmtId before;           // statement just before the slot, if any
  StmtId after;            // statement just after the slot, if any
  // Full sibling context at capture time, nearest-first. When the
  // immediate neighbours are themselves deleted (chains of DCEs), the
  // nearest *surviving* sibling on each side still pins the slot.
  std::vector<StmtId> preceding;
  std::vector<StmtId> following;
};

// The current location of an attached statement (the slot it occupies).
Location CaptureLocationOf(Program& program, const Stmt& stmt);

// An arbitrary insertion point.
Location CaptureInsertionPoint(Program& program, Stmt* parent, BodyKind body,
                               std::size_t index);

struct ResolvedLocation {
  Stmt* parent = nullptr;  // null = top level
  BodyKind body = BodyKind::kMain;
  std::size_t index = 0;
};

// Resolves to a concrete insertion point in the current program, or
// nullopt when the location's context no longer exists (its parent was
// deleted). See journal.h for the policy-level "context copied" check.
//
// `self` is the statement being restored (when known): if both anchors
// survive with other statements now between them — e.g. two adjacent
// deletions restored in the opposite order — the gap is ordered by
// statement id, which reflects original textual order, so siblings come
// back in their original arrangement regardless of restore order.
std::optional<ResolvedLocation> ResolveLocation(Program& program,
                                                const Location& loc,
                                                StmtId self = kNoStmt);

std::string LocationToString(const Location& loc);

}  // namespace pivot

#endif  // PIVOT_ACTIONS_LOCATION_H_
