#include "pivot/actions/journal.h"

#include <algorithm>

#include "pivot/support/diagnostics.h"
#include "pivot/support/fault_injector.h"

namespace pivot {

void Journal::set_observer(Observer* observer) {
  PIVOT_CHECK_MSG(observer == nullptr || observer_ == nullptr,
                  "journal transactions do not nest");
  observer_ = observer;
}

ActionRecord& Journal::NewRecord(ActionKind kind, OrderStamp stamp) {
  ActionRecord rec;
  rec.id = ActionId(static_cast<std::uint32_t>(records_.size()) + 1);
  rec.kind = kind;
  rec.stamp = stamp;
  records_.push_back(std::move(rec));
  return records_.back();
}

void Journal::Annotate(ActionRecord& rec, StmtId stmt, ExprId expr) {
  Annotation anno;
  anno.kind = rec.kind;
  anno.stamp = rec.stamp;
  anno.action = rec.id;
  if (stmt.valid()) annotations_.AddStmt(stmt, anno);
  if (expr.valid()) annotations_.AddExpr(expr, anno);
}

void Journal::ReAnnotate(ActionRecord& rec) {
  switch (rec.kind) {
    case ActionKind::kDelete:
    case ActionKind::kMove:
    case ActionKind::kAdd:
      Annotate(rec, rec.stmt, kNoExpr);
      break;
    case ActionKind::kCopy:
      Annotate(rec, rec.stmt, kNoExpr);
      Annotate(rec, rec.copy, kNoExpr);
      break;
    case ActionKind::kModify:
      if (rec.saved_header != nullptr) {
        Annotate(rec, rec.stmt, kNoExpr);
      } else {
        Annotate(rec, kNoStmt, rec.new_expr);
      }
      break;
  }
}

SlotPos Journal::CaptureSlot(const Stmt& stmt) const {
  SlotPos pos;
  pos.parent = stmt.parent != nullptr ? stmt.parent->id : kNoStmt;
  pos.body = stmt.parent_body;
  pos.index = program_.IndexOf(stmt);
  return pos;
}

void Journal::InsertAtSlot(const SlotPos& pos, StmtPtr stmt) {
  Stmt* parent =
      pos.parent.valid() ? &program_.GetStmt(pos.parent) : nullptr;
  program_.InsertAt(parent, pos.body, pos.index, std::move(stmt));
}

void Journal::NotifyAppend(const ActionRecord& rec) {
  if (observer_ == nullptr) return;
  JournalEvent event;
  event.kind = JournalEvent::Kind::kAppend;
  event.action = rec.id;
  observer_->OnJournalEvent(event);
}

void Journal::NotifyAppend(const ActionRecord& rec, const SlotPos& pos) {
  if (observer_ == nullptr) return;
  JournalEvent event;
  event.kind = JournalEvent::Kind::kAppend;
  event.action = rec.id;
  event.has_pos = true;
  event.pos = pos;
  observer_->OnJournalEvent(event);
}

void Journal::NotifyInvert(const ActionRecord& rec, bool has_pos,
                           const SlotPos& pos) {
  if (observer_ == nullptr) return;
  JournalEvent event;
  event.kind = JournalEvent::Kind::kInvert;
  event.action = rec.id;
  event.has_pos = has_pos;
  event.pos = pos;
  observer_->OnJournalEvent(event);
}

ActionId Journal::Delete(Stmt& stmt, OrderStamp stamp) {
  PIVOT_FAULT_POINT("journal.delete.pre");
  const SlotPos slot = CaptureSlot(stmt);
  ActionRecord& rec = NewRecord(ActionKind::kDelete, stamp);
  rec.stmt = stmt.id;
  rec.orig_loc = CaptureLocationOf(program_, stmt);
  rec.detached = program_.Detach(stmt);
  Annotate(rec, rec.stmt, kNoExpr);
  NotifyAppend(rec, slot);
  PIVOT_FAULT_POINT("journal.delete.post");
  return rec.id;
}

ActionId Journal::Copy(Stmt& src, Stmt* dest_parent, BodyKind body,
                       std::size_t index, OrderStamp stamp, Stmt** out_copy) {
  PIVOT_FAULT_POINT("journal.copy.pre");
  PIVOT_CHECK(src.attached);
  StmtPtr clone = CloneStmt(src);
  ActionRecord& rec = NewRecord(ActionKind::kCopy, stamp);
  rec.stmt = src.id;
  rec.dest_loc = CaptureInsertionPoint(program_, dest_parent, body, index);
  Stmt* raw = program_.InsertAt(dest_parent, body, index, std::move(clone));
  rec.copy = raw->id;
  // Both the source (its context is now duplicated) and the clone carry
  // the cp annotation, per Figure 2.
  Annotate(rec, rec.stmt, kNoExpr);
  Annotate(rec, rec.copy, kNoExpr);
  if (out_copy != nullptr) *out_copy = raw;
  NotifyAppend(rec);
  PIVOT_FAULT_POINT("journal.copy.post");
  return rec.id;
}

ActionId Journal::Move(Stmt& stmt, Stmt* dest_parent, BodyKind body,
                       std::size_t index, OrderStamp stamp) {
  PIVOT_FAULT_POINT("journal.move.pre");
  PIVOT_CHECK(stmt.attached);
  const SlotPos slot = CaptureSlot(stmt);
  ActionRecord& rec = NewRecord(ActionKind::kMove, stamp);
  rec.stmt = stmt.id;
  rec.orig_loc = CaptureLocationOf(program_, stmt);
  StmtPtr owned = program_.Detach(stmt);
  // `index` is interpreted in the destination list *after* the detach.
  rec.dest_loc = CaptureInsertionPoint(program_, dest_parent, body, index);
  program_.InsertAt(dest_parent, body, index, std::move(owned));
  Annotate(rec, rec.stmt, kNoExpr);
  NotifyAppend(rec, slot);
  PIVOT_FAULT_POINT("journal.move.post");
  return rec.id;
}

ActionId Journal::Add(StmtPtr stmt, Stmt* dest_parent, BodyKind body,
                      std::size_t index, OrderStamp stamp,
                      std::string description, Stmt** out) {
  PIVOT_FAULT_POINT("journal.add.pre");
  ActionRecord& rec = NewRecord(ActionKind::kAdd, stamp);
  rec.description = std::move(description);
  rec.dest_loc = CaptureInsertionPoint(program_, dest_parent, body, index);
  Stmt* raw = program_.InsertAt(dest_parent, body, index, std::move(stmt));
  rec.stmt = raw->id;
  Annotate(rec, rec.stmt, kNoExpr);
  if (out != nullptr) *out = raw;
  NotifyAppend(rec);
  PIVOT_FAULT_POINT("journal.add.post");
  return rec.id;
}

ActionId Journal::Modify(Expr& site, ExprPtr replacement, OrderStamp stamp,
                         Expr** out_new) {
  PIVOT_FAULT_POINT("journal.modify.pre");
  PIVOT_CHECK(replacement != nullptr);
  PIVOT_CHECK_MSG(site.owner != nullptr,
                  "Modify target must live on a statement");
  ActionRecord& rec = NewRecord(ActionKind::kModify, stamp);
  rec.expr_owner = site.owner->id;
  rec.old_expr = site.id;  // valid once registered; site is registered
  Expr* new_raw = replacement.get();
  rec.replaced = program_.ReplaceExpr(site, std::move(replacement));
  rec.old_expr = rec.replaced->id;
  rec.new_expr = new_raw->id;
  Annotate(rec, kNoStmt, rec.new_expr);
  if (out_new != nullptr) *out_new = new_raw;
  NotifyAppend(rec);
  PIVOT_FAULT_POINT("journal.modify.post");
  return rec.id;
}

ActionId Journal::ModifyHeader(Stmt& loop, std::string var, ExprPtr lo,
                               ExprPtr hi, ExprPtr step, OrderStamp stamp) {
  PIVOT_FAULT_POINT("journal.modify_header.pre");
  PIVOT_CHECK(loop.kind == StmtKind::kDo);
  PIVOT_CHECK(lo != nullptr && hi != nullptr);
  ActionRecord& rec = NewRecord(ActionKind::kModify, stamp);
  rec.stmt = loop.id;
  auto saved = std::make_unique<ActionRecord::HeaderPayload>();
  saved->var = loop.loop_var;
  saved->lo = program_.ReplaceSlotExpr(loop, ExprSlot::kLo, std::move(lo));
  saved->hi = program_.ReplaceSlotExpr(loop, ExprSlot::kHi, std::move(hi));
  saved->step =
      program_.ReplaceSlotExpr(loop, ExprSlot::kStep, std::move(step));
  program_.SetLoopVar(loop, std::move(var));
  rec.saved_header = std::move(saved);
  Annotate(rec, rec.stmt, kNoExpr);
  NotifyAppend(rec);
  PIVOT_FAULT_POINT("journal.modify_header.post");
  return rec.id;
}

const ActionRecord* Journal::FindDetachedHolder(StmtId id) const {
  const Stmt* target = program_.FindStmt(id);
  if (target == nullptr) return nullptr;
  for (const ActionRecord& rec : records_) {
    if (rec.undone || rec.detached == nullptr) continue;
    bool contains = false;
    ForEachStmt(static_cast<const Stmt&>(*rec.detached),
                [&](const Stmt& s) {
                  if (s.id == id) contains = true;
                });
    if (contains) return &rec;
  }
  return nullptr;
}

bool Journal::IsEditStamp(OrderStamp stamp) const {
  return std::find(edit_stamps_.begin(), edit_stamps_.end(), stamp) !=
         edit_stamps_.end();
}

void Journal::RestoreState(std::deque<ActionRecord> records,
                           AnnotationMap annotations,
                           std::vector<OrderStamp> edit_stamps) {
  PIVOT_CHECK_MSG(records_.empty() && annotations_.TotalCount() == 0 &&
                      edit_stamps_.empty(),
                  "RestoreState requires an empty journal");
  records_ = std::move(records);
  annotations_ = std::move(annotations);
  edit_stamps_ = std::move(edit_stamps);
  for (std::size_t i = 0; i < records_.size(); ++i) {
    ActionRecord& rec = records_[i];
    PIVOT_CHECK_MSG(rec.id.value() == i + 1,
                    "restored record ids must match journal positions");
    // Payload trees (what undo would re-attach) live outside the attached
    // program; register them so their ids resolve again.
    if (rec.detached != nullptr) {
      program_.RegisterTree(*rec.detached);
    }
    if (rec.replaced != nullptr) {
      program_.RegisterExprTree(*rec.replaced);
    }
    if (rec.saved_header != nullptr) {
      for (Expr* e : {rec.saved_header->lo.get(), rec.saved_header->hi.get(),
                      rec.saved_header->step.get()}) {
        if (e != nullptr) {
          program_.RegisterExprTree(*e);
        }
      }
    }
  }
}

const ActionRecord& Journal::record(ActionId action) const {
  PIVOT_CHECK(action.valid() &&
              action.value() <= records_.size());
  return records_[action.value() - 1];
}

std::vector<ActionId> Journal::LiveActionsOf(OrderStamp stamp) const {
  std::vector<ActionId> result;
  for (const ActionRecord& rec : records_) {
    if (rec.stamp == stamp && !rec.undone) result.push_back(rec.id);
  }
  return result;
}

bool Journal::IsLaterLive(const ActionRecord& rec,
                          const ActionRecord& other) const {
  return other.id.value() > rec.id.value() && !other.undone &&
         other.stamp != rec.stamp;
}

bool Journal::TargetsInside(const ActionRecord& other,
                            const Stmt& root) const {
  auto inside = [&](StmtId id) {
    if (!id.valid()) return false;
    const Stmt* stmt = program_.FindStmt(id);
    return stmt != nullptr && IsAncestorOf(root, *stmt);
  };
  switch (other.kind) {
    case ActionKind::kDelete:
    case ActionKind::kMove:
    case ActionKind::kAdd:
      return inside(other.stmt);
    case ActionKind::kCopy:
      return inside(other.copy);
    case ActionKind::kModify:
      return inside(other.saved_header != nullptr ? other.stmt
                                                  : other.expr_owner);
  }
  return false;
}

const ActionRecord* Journal::FindLaterTouch(const ActionRecord& rec,
                                            const Stmt& root) const {
  const ActionRecord* found = nullptr;
  for (auto it = LaterBegin(rec); it != records_.end(); ++it) {
    const ActionRecord& other = *it;
    if (!IsLaterLive(rec, other)) continue;
    if (TargetsInside(other, root)) found = &other;  // keep the latest
  }
  return found;
}

const ActionRecord* Journal::FindLocationClobber(const ActionRecord& rec,
                                                 const Location& loc) const {
  if (!loc.parent.valid()) return nullptr;  // the top level always exists
  const Stmt* parent = program_.FindStmt(loc.parent);
  if (parent == nullptr) return nullptr;

  const ActionRecord* found = nullptr;
  for (auto it = LaterBegin(rec); it != records_.end(); ++it) {
    const ActionRecord& other = *it;
    if (!IsLaterLive(rec, other)) continue;
    switch (other.kind) {
      case ActionKind::kDelete: {
        // Did this deletion remove the location's context? The detached
        // subtree is owned by the record; look for the parent inside it.
        if (other.detached == nullptr) break;
        bool contains = false;
        ForEachStmt(static_cast<const Stmt&>(*other.detached),
                    [&](const Stmt& s) {
                      if (s.id == loc.parent) contains = true;
                    });
        if (contains) found = &other;
        break;
      }
      case ActionKind::kCopy: {
        // "Copy context of the location": the context was duplicated, so
        // the original location is no longer uniquely determined at the
        // source level (paper Table 3).
        const Stmt* src = program_.FindStmt(other.stmt);
        const Stmt* copy = program_.FindStmt(other.copy);
        if ((src != nullptr && IsAncestorOf(*src, *parent)) ||
            (copy != nullptr && IsAncestorOf(*copy, *parent))) {
          found = &other;
        }
        break;
      }
      default:
        break;  // moving the context keeps the location determined
    }
  }
  return found;
}

InvertCheck Journal::CanInvert(ActionId action) const {
  const ActionRecord& rec = record(action);
  PIVOT_CHECK_MSG(!rec.undone, "action already undone");

  auto find_live_detacher = [&](StmtId id) -> const ActionRecord* {
    const ActionRecord* found = nullptr;
    const Stmt* target = program_.FindStmt(id);
    for (auto it = LaterBegin(rec); it != records_.end(); ++it) {
      const ActionRecord& other = *it;
      if (!IsLaterLive(rec, other)) continue;
      if (other.kind != ActionKind::kDelete || other.detached == nullptr) {
        continue;
      }
      if (target != nullptr) {
        bool contains = false;
        ForEachStmt(static_cast<const Stmt&>(*other.detached),
                    [&](const Stmt& s) {
                      if (s.id == id) contains = true;
                    });
        if (contains) found = &other;
      }
    }
    return found;
  };

  switch (rec.kind) {
    case ActionKind::kDelete: {
      // Inverse: Add(orig_location, -, a).
      if (const ActionRecord* blocker =
              FindLocationClobber(rec, rec.orig_loc)) {
        return InvertCheck::Blocked(
            blocker, "original location context was " +
                         std::string(blocker->kind == ActionKind::kCopy
                                         ? "copied"
                                         : "deleted"));
      }
      if (!ResolveLocation(program_, rec.orig_loc)) {
        // The context may be held detached by an action of the same
        // transformation; reverse-order inversion restores it first.
        const ActionRecord* holder = FindDetachedHolder(rec.orig_loc.parent);
        if (holder != nullptr && holder->stamp == rec.stamp) {
          return InvertCheck::Ok();
        }
        return InvertCheck::Blocked(holder,
                                    "original location cannot be determined");
      }
      return InvertCheck::Ok();
    }
    case ActionKind::kCopy: {
      // Inverse: Delete(c).
      const Stmt* copy = program_.FindStmt(rec.copy);
      if (copy == nullptr || !copy->attached) {
        const ActionRecord* blocker = find_live_detacher(rec.copy);
        return InvertCheck::Blocked(blocker, "the copy is no longer present");
      }
      if (const ActionRecord* blocker = FindLaterTouch(rec, *copy)) {
        return InvertCheck::Blocked(
            blocker, "a later transformation touched the copy");
      }
      return InvertCheck::Ok();
    }
    case ActionKind::kMove: {
      const Stmt* stmt = program_.FindStmt(rec.stmt);
      if (stmt == nullptr || !stmt->attached) {
        const ActionRecord* blocker = find_live_detacher(rec.stmt);
        return InvertCheck::Blocked(blocker,
                                    "the moved statement was deleted");
      }
      // Relocated again, or duplicated, by a later transformation? Moving
      // the original back while clones remain (e.g. LUR copied the fused
      // body) would leave the copies inconsistent.
      for (auto it = LaterBegin(rec); it != records_.end(); ++it) {
        const ActionRecord& other = *it;
        if (!IsLaterLive(rec, other)) continue;
        if (other.kind == ActionKind::kMove && other.stmt == rec.stmt) {
          return InvertCheck::Blocked(&other,
                                      "the statement was moved again");
        }
        if (other.kind == ActionKind::kCopy) {
          const Stmt* src = program_.FindStmt(other.stmt);
          if (src != nullptr && stmt != nullptr &&
              IsAncestorOf(*src, *stmt)) {
            return InvertCheck::Blocked(
                &other, "the moved statement was copied");
          }
        }
      }
      if (const ActionRecord* blocker =
              FindLocationClobber(rec, rec.orig_loc)) {
        return InvertCheck::Blocked(
            blocker, "original location context was disturbed");
      }
      if (!ResolveLocation(program_, rec.orig_loc)) {
        const ActionRecord* holder = FindDetachedHolder(rec.orig_loc.parent);
        if (holder != nullptr && holder->stamp == rec.stamp) {
          return InvertCheck::Ok();
        }
        return InvertCheck::Blocked(holder,
                                    "original location cannot be determined");
      }
      return InvertCheck::Ok();
    }
    case ActionKind::kAdd: {
      const Stmt* stmt = program_.FindStmt(rec.stmt);
      if (stmt == nullptr || !stmt->attached) {
        const ActionRecord* blocker = find_live_detacher(rec.stmt);
        return InvertCheck::Blocked(blocker,
                                    "the added statement was deleted");
      }
      if (const ActionRecord* blocker = FindLaterTouch(rec, *stmt)) {
        return InvertCheck::Blocked(
            blocker, "a later transformation touched the added statement");
      }
      return InvertCheck::Ok();
    }
    case ActionKind::kModify: {
      if (rec.saved_header != nullptr) {
        // Loop-header variant.
        const Stmt* loop = program_.FindStmt(rec.stmt);
        PIVOT_CHECK(loop != nullptr);
        if (!loop->attached) {
          const ActionRecord* holder = FindDetachedHolder(rec.stmt);
          if (holder == nullptr || holder->stamp != rec.stamp) {
            return InvertCheck::Blocked(holder, "the loop was deleted");
          }
        }
        for (auto it = LaterBegin(rec); it != records_.end(); ++it) {
          const ActionRecord& other = *it;
          if (!IsLaterLive(rec, other)) continue;
          if (other.kind == ActionKind::kModify &&
              other.saved_header != nullptr && other.stmt == rec.stmt) {
            return InvertCheck::Blocked(&other,
                                        "the loop header was modified again");
          }
          if (other.kind == ActionKind::kCopy) {
            const Stmt* src = program_.FindStmt(other.stmt);
            if (src != nullptr && IsAncestorOf(*src, *loop)) {
              return InvertCheck::Blocked(
                  &other, "the loop's context was copied");
            }
          }
        }
        return InvertCheck::Ok();
      }
      const Expr* node = program_.FindExpr(rec.new_expr);
      PIVOT_CHECK(node != nullptr);
      if (node->owner == nullptr) {
        // Our replacement subtree was itself replaced by a later Modify.
        const ActionRecord* found = nullptr;
        for (auto it = LaterBegin(rec); it != records_.end(); ++it) {
          const ActionRecord& other = *it;
          if (!IsLaterLive(rec, other)) continue;
          if (other.kind != ActionKind::kModify || other.replaced == nullptr) {
            continue;
          }
          bool contains = false;
          ForEachExpr(static_cast<const Expr&>(*other.replaced),
                      [&](const Expr& e) {
                        if (e.id == rec.new_expr) contains = true;
                      });
          if (contains) found = &other;
        }
        return InvertCheck::Blocked(found,
                                    "the modified expression was replaced");
      }
      const Stmt* owner = node->owner;
      if (!owner->attached) {
        const ActionRecord* blocker = find_live_detacher(owner->id);
        return InvertCheck::Blocked(
            blocker, "the statement holding the modification was deleted");
      }
      // A later copy of the owning statement duplicated the modified code;
      // inverting only the original would leave the clone transformed.
      for (auto it = LaterBegin(rec); it != records_.end(); ++it) {
        const ActionRecord& other = *it;
        if (!IsLaterLive(rec, other)) continue;
        if (other.kind != ActionKind::kCopy) continue;
        const Stmt* src = program_.FindStmt(other.stmt);
        if (src != nullptr && IsAncestorOf(*src, *owner)) {
          return InvertCheck::Blocked(
              &other, "the modified statement's context was copied");
        }
      }
      return InvertCheck::Ok();
    }
  }
  PIVOT_UNREACHABLE("action kind");
}

void Journal::Invert(ActionId action) {
  PIVOT_FAULT_POINT("journal.invert.pre");
  const InvertCheck check = CanInvert(action);
  PIVOT_CHECK_MSG(check.ok, "inverse action not performable: " + check.reason);
  ActionRecord& rec = records_[action.value() - 1];

  // The exact slot the statement this inverse displaces currently sits in,
  // so a transaction rollback can put it back bit-identically.
  bool has_pos = false;
  SlotPos pos;
  switch (rec.kind) {
    case ActionKind::kCopy:
      pos = CaptureSlot(program_.GetStmt(rec.copy));
      has_pos = true;
      break;
    case ActionKind::kMove:
    case ActionKind::kAdd:
      pos = CaptureSlot(program_.GetStmt(rec.stmt));
      has_pos = true;
      break;
    default:
      break;
  }

  switch (rec.kind) {
    case ActionKind::kDelete: {
      // Add(orig_location, -, a).
      auto resolved = ResolveLocation(program_, rec.orig_loc, rec.stmt);
      PIVOT_CHECK(resolved.has_value());
      PIVOT_CHECK(rec.detached != nullptr);
      program_.InsertAt(resolved->parent, resolved->body, resolved->index,
                        std::move(rec.detached));
      break;
    }
    case ActionKind::kCopy: {
      // Delete(c); the clone is retired into the record so registry
      // pointers (annotations, other records) stay valid.
      Stmt& copy = program_.GetStmt(rec.copy);
      rec.detached = program_.Detach(copy);
      break;
    }
    case ActionKind::kMove: {
      // Move(a, orig_location).
      Stmt& stmt = program_.GetStmt(rec.stmt);
      StmtPtr owned = program_.Detach(stmt);
      auto resolved = ResolveLocation(program_, rec.orig_loc, rec.stmt);
      PIVOT_CHECK(resolved.has_value());
      program_.InsertAt(resolved->parent, resolved->body, resolved->index,
                        std::move(owned));
      break;
    }
    case ActionKind::kAdd: {
      // Delete(a).
      Stmt& stmt = program_.GetStmt(rec.stmt);
      rec.detached = program_.Detach(stmt);
      break;
    }
    case ActionKind::kModify: {
      if (rec.saved_header != nullptr) {
        // Modify(L1, saved header): swap the headers back.
        Stmt& loop = program_.GetStmt(rec.stmt);
        auto current = std::make_unique<ActionRecord::HeaderPayload>();
        current->var = loop.loop_var;
        ActionRecord::HeaderPayload& saved = *rec.saved_header;
        current->lo = program_.ReplaceSlotExpr(loop, ExprSlot::kLo,
                                               std::move(saved.lo));
        current->hi = program_.ReplaceSlotExpr(loop, ExprSlot::kHi,
                                               std::move(saved.hi));
        current->step = program_.ReplaceSlotExpr(loop, ExprSlot::kStep,
                                                 std::move(saved.step));
        program_.SetLoopVar(loop, saved.var);
        rec.saved_header = std::move(current);
        break;
      }
      // Modify(new_exp(a), exp).
      Expr& node = program_.GetExpr(rec.new_expr);
      PIVOT_CHECK(rec.replaced != nullptr);
      ExprPtr removed = program_.ReplaceExpr(node, std::move(rec.replaced));
      rec.replaced = std::move(removed);  // retire the replacement subtree
      break;
    }
  }

  rec.undone = true;
  annotations_.RemoveAction(action);
  NotifyInvert(rec, has_pos, pos);
  PIVOT_FAULT_POINT("journal.invert.post");
}

void Journal::RollbackAppend(const JournalEvent& event) {
  PIVOT_CHECK_MSG(!records_.empty() && records_.back().id == event.action,
                  "rollback must pop the most recent action");
  ActionRecord& rec = records_.back();
  PIVOT_CHECK_MSG(!rec.undone, "a transaction-fresh action cannot be undone");
  switch (rec.kind) {
    case ActionKind::kDelete: {
      PIVOT_CHECK(event.has_pos && rec.detached != nullptr);
      InsertAtSlot(event.pos, std::move(rec.detached));
      break;
    }
    case ActionKind::kCopy: {
      StmtPtr clone = program_.Detach(program_.GetStmt(rec.copy));
      program_.UnregisterTree(*clone);
      break;
    }
    case ActionKind::kMove: {
      PIVOT_CHECK(event.has_pos);
      StmtPtr owned = program_.Detach(program_.GetStmt(rec.stmt));
      InsertAtSlot(event.pos, std::move(owned));
      break;
    }
    case ActionKind::kAdd: {
      StmtPtr added = program_.Detach(program_.GetStmt(rec.stmt));
      program_.UnregisterTree(*added);
      break;
    }
    case ActionKind::kModify: {
      if (rec.saved_header != nullptr) {
        Stmt& loop = program_.GetStmt(rec.stmt);
        ActionRecord::HeaderPayload& saved = *rec.saved_header;
        ExprPtr new_lo = program_.ReplaceSlotExpr(loop, ExprSlot::kLo,
                                                  std::move(saved.lo));
        ExprPtr new_hi = program_.ReplaceSlotExpr(loop, ExprSlot::kHi,
                                                  std::move(saved.hi));
        ExprPtr new_step = program_.ReplaceSlotExpr(loop, ExprSlot::kStep,
                                                    std::move(saved.step));
        program_.SetLoopVar(loop, saved.var);
        if (new_lo != nullptr) program_.UnregisterExprTree(*new_lo);
        if (new_hi != nullptr) program_.UnregisterExprTree(*new_hi);
        if (new_step != nullptr) program_.UnregisterExprTree(*new_step);
        break;
      }
      Expr& node = program_.GetExpr(rec.new_expr);
      PIVOT_CHECK(rec.replaced != nullptr);
      ExprPtr removed = program_.ReplaceExpr(node, std::move(rec.replaced));
      program_.UnregisterExprTree(*removed);
      break;
    }
  }
  annotations_.RemoveAction(rec.id);
  records_.pop_back();
}

void Journal::RollbackInvert(const JournalEvent& event) {
  PIVOT_CHECK(event.action.valid() &&
              event.action.value() <= records_.size());
  ActionRecord& rec = records_[event.action.value() - 1];
  PIVOT_CHECK_MSG(rec.undone, "RollbackInvert target must be undone");
  switch (rec.kind) {
    case ActionKind::kDelete: {
      // The inverse re-attached the deleted subtree; take it out again.
      rec.detached = program_.Detach(program_.GetStmt(rec.stmt));
      break;
    }
    case ActionKind::kCopy: {
      PIVOT_CHECK(event.has_pos && rec.detached != nullptr);
      InsertAtSlot(event.pos, std::move(rec.detached));
      break;
    }
    case ActionKind::kMove: {
      PIVOT_CHECK(event.has_pos);
      StmtPtr owned = program_.Detach(program_.GetStmt(rec.stmt));
      InsertAtSlot(event.pos, std::move(owned));
      break;
    }
    case ActionKind::kAdd: {
      PIVOT_CHECK(event.has_pos && rec.detached != nullptr);
      InsertAtSlot(event.pos, std::move(rec.detached));
      break;
    }
    case ActionKind::kModify: {
      if (rec.saved_header != nullptr) {
        // Symmetric header swap, exactly like Invert.
        Stmt& loop = program_.GetStmt(rec.stmt);
        auto current = std::make_unique<ActionRecord::HeaderPayload>();
        current->var = loop.loop_var;
        ActionRecord::HeaderPayload& saved = *rec.saved_header;
        current->lo = program_.ReplaceSlotExpr(loop, ExprSlot::kLo,
                                               std::move(saved.lo));
        current->hi = program_.ReplaceSlotExpr(loop, ExprSlot::kHi,
                                               std::move(saved.hi));
        current->step = program_.ReplaceSlotExpr(loop, ExprSlot::kStep,
                                                 std::move(saved.step));
        program_.SetLoopVar(loop, saved.var);
        rec.saved_header = std::move(current);
        break;
      }
      // After Invert the tree holds the original subtree (old_expr) and
      // the record holds the replacement; swap them forward again.
      Expr& node = program_.GetExpr(rec.old_expr);
      PIVOT_CHECK(rec.replaced != nullptr);
      ExprPtr removed = program_.ReplaceExpr(node, std::move(rec.replaced));
      rec.replaced = std::move(removed);
      break;
    }
  }
  rec.undone = false;
  ReAnnotate(rec);
}

}  // namespace pivot
