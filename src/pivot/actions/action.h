// The five primitive actions and their records (paper Table 1).
//
//   Action                          Inverse action
//   Delete (a)                      Add (orig_location, -, a)
//   Copy (a, location, c)           Delete (c)
//   Move (a, location)              Move (a, orig_location)
//   Add (location, description, a)  Delete (a)
//   Modify (exp(a), new_exp)        Modify (new_exp(a), exp)
//
// Every applied action is recorded with the *order stamp* of the
// transformation that issued it; the record owns whatever the inverse
// action needs (the deleted subtree, the replaced expression, the original
// location). Records are never discarded while undo remains possible.
#ifndef PIVOT_ACTIONS_ACTION_H_
#define PIVOT_ACTIONS_ACTION_H_

#include <memory>
#include <string>

#include "pivot/actions/location.h"

namespace pivot {

enum class ActionKind { kDelete, kCopy, kMove, kAdd, kModify };

const char* ActionKindToString(ActionKind kind);
// The paper's Figure-2 shorthand: "del", "cp", "mv", "add", "md".
const char* ActionKindShorthand(ActionKind kind);

struct ActionRecord {
  ActionId id;
  ActionKind kind = ActionKind::kDelete;
  OrderStamp stamp = kNoStamp;
  bool undone = false;

  // --- targets ---
  StmtId stmt;       // Delete/Move/Add: the statement; Copy: the source
  StmtId copy;       // Copy: the created clone
  ExprId new_expr;   // Modify: root of the replacement subtree (in place)
  ExprId old_expr;   // Modify: root of the replaced subtree (detached)
  StmtId expr_owner; // Modify: statement owning the modified slot

  Location orig_loc;  // Delete/Move: where the statement was
  Location dest_loc;  // Copy/Move/Add: where it went

  // --- owned payloads for inverses ---
  StmtPtr detached;   // Delete: the removed subtree, awaiting restoration;
                      // after an inverted Add/Copy: the discarded subtree
  ExprPtr replaced;   // Modify: the original expression subtree

  // Loop-header Modify variant (the paper's Modify(L1, L2), used by INX /
  // LUR / SMI): the whole control part (var, lo, hi, step) is swapped as a
  // unit. `saved_header` holds the pre-modification header while the
  // action is live.
  struct HeaderPayload {
    std::string var;
    ExprPtr lo;
    ExprPtr hi;
    ExprPtr step;
  };
  std::unique_ptr<HeaderPayload> saved_header;
  bool IsHeaderModify() const {
    return kind == ActionKind::kModify && saved_header != nullptr;
  }

  std::string description;  // Add's description operand (free-form)

  std::string ToString() const;
};

}  // namespace pivot

#endif  // PIVOT_ACTIONS_ACTION_H_
