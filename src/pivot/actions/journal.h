// The order-stamped action journal.
//
// All program mutation performed by transformations goes through the
// journal: it applies the five primitive actions (Table 1), records one
// ActionRecord per action with the issuing transformation's order stamp,
// and maintains the APDG/ADAG annotations (Figure 2).
//
// The journal also answers the *reversibility* question of §4.2(2): can an
// action's inverse be performed right now, and if not, which later action
// (hence which later transformation) is in the way? That answer drives
// lines 7–9 of the paper's UNDO algorithm.
#ifndef PIVOT_ACTIONS_JOURNAL_H_
#define PIVOT_ACTIONS_JOURNAL_H_

#include <deque>
#include <string>
#include <vector>

#include "pivot/actions/action.h"
#include "pivot/actions/annotations.h"

namespace pivot {

// Why an inverse action cannot be performed immediately. `blocker` is the
// later, still-live action that invalidated the post-pattern; its stamp
// identifies the affecting transformation.
struct InvertCheck {
  bool ok = false;
  const ActionRecord* blocker = nullptr;
  std::string reason;

  static InvertCheck Ok() { return {true, nullptr, {}}; }
  static InvertCheck Blocked(const ActionRecord* by, std::string why) {
    return {false, by, std::move(why)};
  }
};

// The concrete body slot a statement occupied immediately before a journal
// mutation. Transaction rollback re-inserts at exactly this position:
// anchor-based Location resolution is deliberately fuzzy (surviving
// neighbours win over raw indices) and may legally re-order statements,
// which a rollback to a bit-identical prior state must never do.
struct SlotPos {
  StmtId parent;  // kNoStmt = top level
  BodyKind body = BodyKind::kMain;
  std::size_t index = 0;
};

// One observed journal state change, reported to the installed Observer as
// it happens. `pos` is filled (has_pos) for mutations whose exact reversal
// needs the pre-mutation slot of the touched statement.
struct JournalEvent {
  enum class Kind {
    kAppend,  // a primitive action was applied and recorded
    kInvert,  // a live action's inverse was performed (record kept, undone)
  };
  Kind kind = Kind::kAppend;
  ActionId action;
  bool has_pos = false;
  SlotPos pos;
};

class Journal {
 public:
  // Receives every committed state change of the journal; installed by the
  // session's Transaction so it can reverse the exact sequence on rollback.
  class Observer {
   public:
    virtual ~Observer() = default;
    virtual void OnJournalEvent(const JournalEvent& event) = 0;
  };

  explicit Journal(Program& program) : program_(program) {}
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // At most one observer at a time (transactions do not nest); pass null
  // to detach.
  void set_observer(Observer* observer);

  Program& program() { return program_; }
  const Program& program() const { return program_; }
  AnnotationMap& annotations() { return annotations_; }
  const AnnotationMap& annotations() const { return annotations_; }

  // --- The five primitive actions ---
  // Each applies the mutation, records it under `stamp`, annotates the
  // touched nodes and returns the action id.

  // Delete (a): detach `stmt`, remembering its location for restoration.
  ActionId Delete(Stmt& stmt, OrderStamp stamp);

  // Copy (a, location, c): clone `src` (deep) into the given slot. The
  // clone is returned through `out_copy`.
  ActionId Copy(Stmt& src, Stmt* dest_parent, BodyKind body,
                std::size_t index, OrderStamp stamp,
                Stmt** out_copy = nullptr);

  // Move (a, location).
  ActionId Move(Stmt& stmt, Stmt* dest_parent, BodyKind body,
                std::size_t index, OrderStamp stamp);

  // Add (location, description, a): attach the new statement `stmt`.
  ActionId Add(StmtPtr stmt, Stmt* dest_parent, BodyKind body,
               std::size_t index, OrderStamp stamp, std::string description,
               Stmt** out = nullptr);

  // Modify (exp(a), new_exp): replace the subtree at `site`. The new root
  // is returned through `out_new` (it is the registered `replacement`).
  ActionId Modify(Expr& site, ExprPtr replacement, OrderStamp stamp,
                  Expr** out_new = nullptr);

  // Modify (L1, new header): the loop-header variant of Modify used by the
  // restructuring transformations (paper Table 2 writes INX as
  // Copy(L1,Ltmp); Modify(L1,L2); Modify(L2,Ltmp) — the temporary lives in
  // the action record here). `step` may be null (meaning 1).
  ActionId ModifyHeader(Stmt& loop, std::string var, ExprPtr lo, ExprPtr hi,
                        ExprPtr step, OrderStamp stamp);

  // --- Reversal ---
  // Is the inverse of `action` immediately performable? (§4.2(2))
  InvertCheck CanInvert(ActionId action) const;

  // Performs the inverse (Table 1, right column) and marks the record
  // undone. PIVOT_CHECKs that CanInvert holds.
  void Invert(ActionId action);

  // --- Transaction rollback ---
  // Exact physical reversal of the journal's own state changes; only the
  // Transaction calls these, replaying its observed events in reverse
  // order, so each call operates on precisely the state that existed right
  // after the event it reverses.

  // Reverses an action appended during the transaction: un-does its
  // program mutation, strips its annotations, retires any program nodes it
  // created and pops its record. The record must be the most recent one.
  void RollbackAppend(const JournalEvent& event);

  // Re-performs an action inverted during the transaction: redoes the
  // original mutation (re-inserting at event.pos where needed), marks the
  // record live again and restores its annotations.
  void RollbackInvert(const JournalEvent& event);

  // --- Introspection ---
  const ActionRecord& record(ActionId action) const;
  // Deque: record addresses stay stable as the journal grows.
  const std::deque<ActionRecord>& records() const { return records_; }

  // Live (not yet undone) actions issued by transformation `stamp`, in
  // application order.
  std::vector<ActionId> LiveActionsOf(OrderStamp stamp) const;

  // The live action, later than journal position of `rec`, from a
  // different transformation, whose target lies inside the subtree rooted
  // at `root` — the generic "someone touched what I need to undo" probe.
  const ActionRecord* FindLaterTouch(const ActionRecord& rec,
                                     const Stmt& root) const;

  // The live later action that makes `loc` undeterminable: one that
  // deleted the location's context, or copied it (paper Table 3,
  // reversibility-disabling conditions of DCE). Actions of the *same*
  // transformation are exempt: inverting a transformation's actions in
  // reverse order restores intra-transformation context first.
  const ActionRecord* FindLocationClobber(const ActionRecord& rec,
                                          const Location& loc) const;

  // The live Delete action whose detached subtree currently holds the
  // statement `id`, or null.
  const ActionRecord* FindDetachedHolder(StmtId id) const;

  // Stamps issued to user edits (marked by the Editor). Safety checks need
  // the distinction: a pre-pattern statement deleted by a *transformation*
  // was legitimately consumed (performing a transformation never destroys
  // an earlier one's safety, §4.2(1)); one deleted by an *edit* is gone.
  void MarkEditStamp(OrderStamp stamp) { edit_stamps_.push_back(stamp); }
  bool IsEditStamp(OrderStamp stamp) const;
  const std::vector<OrderStamp>& edit_stamps() const { return edit_stamps_; }

  // --- Persistence restore ---
  // Installs a decoded snapshot image into an empty journal. Records arrive
  // with ids already equal to their position + 1 (the journal's invariant);
  // every payload tree they carry (detached statements, replaced expression
  // trees, saved loop headers) is registered with the program so id lookups
  // and later undo work exactly as in the original process. Aborts if the
  // journal has already recorded actions.
  void RestoreState(std::deque<ActionRecord> records, AnnotationMap annotations,
                    std::vector<OrderStamp> edit_stamps);

 private:
  ActionRecord& NewRecord(ActionKind kind, OrderStamp stamp);
  void Annotate(ActionRecord& rec, StmtId stmt, ExprId expr);
  // Re-adds the annotations `rec` originally carried (rollback of Invert).
  void ReAnnotate(ActionRecord& rec);
  bool IsLaterLive(const ActionRecord& rec, const ActionRecord& other) const;
  // First record strictly after `rec` in journal order — the only
  // candidates IsLaterLive can accept. Ids are positional (records_[id-1]
  // is the record itself), so the reversibility scans need never walk the
  // prefix; for the newest transformation the later-suffix is empty and
  // CanInvert is O(1), which is what keeps a search-style reject cheap.
  std::deque<ActionRecord>::const_iterator LaterBegin(
      const ActionRecord& rec) const {
    return records_.begin() + static_cast<std::ptrdiff_t>(rec.id.value());
  }
  // Target statement inside subtree test (by current tree shape).
  bool TargetsInside(const ActionRecord& other, const Stmt& root) const;

  SlotPos CaptureSlot(const Stmt& stmt) const;
  void InsertAtSlot(const SlotPos& pos, StmtPtr stmt);
  void NotifyAppend(const ActionRecord& rec);
  void NotifyAppend(const ActionRecord& rec, const SlotPos& pos);
  void NotifyInvert(const ActionRecord& rec, bool has_pos,
                    const SlotPos& pos);

  Program& program_;
  std::deque<ActionRecord> records_;
  AnnotationMap annotations_;
  std::vector<OrderStamp> edit_stamps_;
  Observer* observer_ = nullptr;
};

}  // namespace pivot

#endif  // PIVOT_ACTIONS_JOURNAL_H_
