#include "pivot/actions/action.h"

#include <sstream>

namespace pivot {

const char* ActionKindToString(ActionKind kind) {
  switch (kind) {
    case ActionKind::kDelete: return "Delete";
    case ActionKind::kCopy: return "Copy";
    case ActionKind::kMove: return "Move";
    case ActionKind::kAdd: return "Add";
    case ActionKind::kModify: return "Modify";
  }
  return "?";
}

const char* ActionKindShorthand(ActionKind kind) {
  switch (kind) {
    case ActionKind::kDelete: return "del";
    case ActionKind::kCopy: return "cp";
    case ActionKind::kMove: return "mv";
    case ActionKind::kAdd: return "add";
    case ActionKind::kModify: return "md";
  }
  return "?";
}

std::string ActionRecord::ToString() const {
  std::ostringstream os;
  os << ActionKindShorthand(kind) << "_" << stamp << "(a" << id.value();
  switch (kind) {
    case ActionKind::kDelete:
      os << ", s" << stmt.value() << " from " << LocationToString(orig_loc);
      break;
    case ActionKind::kCopy:
      os << ", s" << stmt.value() << " -> s" << copy.value() << " at "
         << LocationToString(dest_loc);
      break;
    case ActionKind::kMove:
      os << ", s" << stmt.value() << " " << LocationToString(orig_loc)
         << " -> " << LocationToString(dest_loc);
      break;
    case ActionKind::kAdd:
      os << ", s" << stmt.value() << " at " << LocationToString(dest_loc);
      break;
    case ActionKind::kModify:
      if (saved_header != nullptr) {
        os << ", header of s" << stmt.value();
      } else {
        os << ", e" << old_expr.value() << " -> e" << new_expr.value()
           << " in s" << expr_owner.value();
      }
      break;
  }
  os << (undone ? ", undone)" : ")");
  return os.str();
}

}  // namespace pivot
