// Transformation-independent annotations on the program representation
// (paper §4.1, Figure 2).
//
// Each node touched by a primitive action carries a small tag — "md_3",
// "mv_4", "del_2" — naming the action kind and the order stamp of the
// transformation that issued it. The annotated PDG/DAG pair is what the
// paper calls the APDG and ADAG. Annotations are removed when the action
// is inverted, so the map always reflects the set of *live* (not undone)
// history.
#ifndef PIVOT_ACTIONS_ANNOTATIONS_H_
#define PIVOT_ACTIONS_ANNOTATIONS_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "pivot/actions/action.h"

namespace pivot {

struct Annotation {
  ActionKind kind = ActionKind::kModify;
  OrderStamp stamp = kNoStamp;
  ActionId action;

  // "md_3" style rendering.
  std::string ToString() const;
};

class AnnotationMap {
 public:
  void AddStmt(StmtId stmt, const Annotation& anno);
  void AddExpr(ExprId expr, const Annotation& anno);
  void RemoveAction(ActionId action);

  const std::vector<Annotation>& OfStmt(StmtId stmt) const;
  const std::vector<Annotation>& OfExpr(ExprId expr) const;

  // The most recent (innermost) annotation, or null.
  const Annotation* TopOfExpr(ExprId expr) const;
  const Annotation* TopOfStmt(StmtId stmt) const;

  std::size_t TotalCount() const;

  // Enumeration for cross-validators: every (node, annotation) pair, in
  // unspecified order.
  void ForEachStmtAnno(
      const std::function<void(StmtId, const Annotation&)>& fn) const;
  void ForEachExprAnno(
      const std::function<void(ExprId, const Annotation&)>& fn) const;

  // One line per annotated node, e.g. "s5: mv_4" / "e12: md_2, md_3".
  std::string Render(const Program& program) const;

 private:
  std::unordered_map<StmtId, std::vector<Annotation>> stmt_annos_;
  std::unordered_map<ExprId, std::vector<Annotation>> expr_annos_;
  std::vector<Annotation> empty_;
};

}  // namespace pivot

#endif  // PIVOT_ACTIONS_ANNOTATIONS_H_
