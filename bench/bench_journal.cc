// Durable-journal cost study (DESIGN.md §11).
//
// Two questions the durability layer has to answer with numbers:
//   * what does write-ahead logging cost per committed operation —
//     no journal vs journal (fsync off) vs journal (fsync on);
//   * how does recovery latency scale once snapshots are enabled: it
//     must track the tail length (operations since the last snapshot),
//     not the total history length. The study below builds journals of
//     growing history with snapshots off and on, times Session::Recover
//     for each, and gates on the deterministic half of the claim — with
//     snapshots enabled the replayed-operation count stays bounded by
//     the snapshot interval no matter how long the history grows.
//
// Results land in BENCH_journal.json (see support/benchjson.h).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "pivot/core/session.h"
#include "pivot/ir/parser.h"
#include "pivot/persist/durable.h"
#include "pivot/support/benchjson.h"

namespace pivot {
namespace {

// One constant-fold site per statement: every kCfo apply is one committed
// transaction, so `sites` controls the journal's history length exactly.
Program MakeFoldableProgram(int sites) {
  std::ostringstream src;
  for (int i = 0; i < sites; ++i) {
    src << "x" << i << " = " << (i % 7 + 1) << " + " << (i % 5 + 1) << "\n";
  }
  for (int i = 0; i < sites; ++i) src << "write x" << i << "\n";
  return Parse(src.str());
}

int ApplyFolds(Session& s, int n) {
  int applied = 0;
  for (int i = 0; i < n; ++i) {
    const std::vector<Opportunity> ops =
        s.FindOpportunities(TransformKind::kCfo);
    if (ops.empty()) break;
    s.Apply(ops.front());
    ++applied;
  }
  return applied;
}

std::string TmpWalPath() { return "/tmp/pivot_bench_journal.wal"; }

std::uint64_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<std::uint64_t>(in.tellg()) : 0;
}

// Append cost: a fixed apply workload, committed bare / journaled /
// journaled+fsync. items_processed = committed operations.
void BM_JournalAppend(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const int sites = 64;
  for (auto _ : state) {
    state.PauseTiming();
    Session s(MakeFoldableProgram(sites));
    std::unique_ptr<DurableJournal> journal;
    if (mode > 0) {
      PersistOptions p;
      p.fsync = mode == 2;
      journal = DurableJournal::Create(s, TmpWalPath(), p);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(ApplyFolds(s, sites));
  }
  state.SetItemsProcessed(state.iterations() * sites);
  state.SetLabel(mode == 0   ? "no-journal"
                 : mode == 1 ? "journal"
                             : "journal+fsync");
}
BENCHMARK(BM_JournalAppend)->Arg(0)->Arg(1)->Arg(2)->ArgName("mode");

// The printed artifact + JSON: recovery latency across history lengths,
// snapshots off vs on. Returns false when the tail-replay bound is
// violated (replayed operations exceed the snapshot interval).
bool RecoveryLatencyStudy() {
  const bool smoke = BenchSmokeMode();
  const std::vector<int> histories =
      smoke ? std::vector<int>{8, 16} : std::vector<int>{100, 400, 1600};
  const int interval_on = smoke ? 4 : 64;
  const int reps = smoke ? 1 : 3;

  BenchJson json("journal");
  std::printf("== Recovery latency: full replay vs snapshot + tail ==\n");
  std::printf("%8s %9s %12s %9s %9s\n", "history", "snapshot", "recover_ms",
              "replayed", "bytes");
  bool tail_bound_ok = true;
  for (const int history : histories) {
    for (const int interval : {0, interval_on}) {
      const std::string path = TmpWalPath();
      {
        Session s(MakeFoldableProgram(history));
        PersistOptions p;
        p.snapshot_interval = interval;
        p.fsync = false;  // measure replay cost, not the build's fsyncs
        const auto journal = DurableJournal::Create(s, path, p);
        if (ApplyFolds(s, history) != history) {
          std::fprintf(stderr, "workload underfilled at history=%d\n",
                       history);
          return false;
        }
      }
      double best_ms = 0;
      std::uint64_t replayed = 0;
      for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        const RecoverResult result = Session::Recover(path);
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (r == 0 || ms < best_ms) best_ms = ms;
        replayed = result.report.txns_replayed;
        if (!result.report.validator_ok) {
          std::fprintf(stderr, "recovered state failed validation\n");
          return false;
        }
      }
      const std::uint64_t bytes = FileBytes(path);
      std::printf("%8d %9d %12.3f %9llu %9llu\n", history, interval, best_ms,
                  static_cast<unsigned long long>(replayed),
                  static_cast<unsigned long long>(bytes));
      json.Row()
          .Int("history", static_cast<std::uint64_t>(history))
          .Int("snapshot_interval", static_cast<std::uint64_t>(interval))
          .Num("recover_ms", best_ms)
          .Int("ops_replayed", replayed)
          .Int("journal_bytes", bytes);
      if (interval > 0 &&
          replayed > static_cast<std::uint64_t>(interval)) {
        std::fprintf(stderr,
                     "tail-replay bound violated: replayed %llu > "
                     "interval %d at history %d\n",
                     static_cast<unsigned long long>(replayed), interval,
                     history);
        tail_bound_ok = false;
      }
    }
  }
  const std::string out = json.WriteFile(".");
  if (!out.empty()) std::printf("wrote %s\n", out.c_str());
  std::printf("tail-replay bound (replayed <= snapshot interval): %s\n\n",
              tail_bound_ok ? "ok" : "VIOLATED");
  return tail_bound_ok;
}

}  // namespace
}  // namespace pivot

int main(int argc, char** argv) {
  const bool ok = pivot::RecoveryLatencyStudy();
  if (!pivot::BenchSmokeMode()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return ok ? 0 : 1;
}
