// Durable-journal cost study (DESIGN.md §11).
//
// Two questions the durability layer has to answer with numbers:
//   * what does write-ahead logging cost per committed operation —
//     no journal vs journal (fsync off) vs journal (fsync on);
//   * how does recovery latency scale once snapshots are enabled: it
//     must track the tail length (operations since the last snapshot),
//     not the total history length. The study below builds journals of
//     growing history with snapshots off and on, times Session::Recover
//     for each, and gates on the deterministic half of the claim — with
//     snapshots enabled the replayed-operation count stays bounded by
//     the snapshot interval no matter how long the history grows.
//
// Results land in BENCH_journal.json (see support/benchjson.h).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "pivot/core/session.h"
#include "pivot/ir/parser.h"
#include "pivot/persist/durable.h"
#include "pivot/support/benchjson.h"

namespace pivot {
namespace {

// One constant-fold site per statement: every kCfo apply is one committed
// transaction, so `sites` controls the journal's history length exactly.
Program MakeFoldableProgram(int sites) {
  std::ostringstream src;
  for (int i = 0; i < sites; ++i) {
    src << "x" << i << " = " << (i % 7 + 1) << " + " << (i % 5 + 1) << "\n";
  }
  for (int i = 0; i < sites; ++i) src << "write x" << i << "\n";
  return Parse(src.str());
}

int ApplyFolds(Session& s, int n) {
  int applied = 0;
  for (int i = 0; i < n; ++i) {
    const std::vector<Opportunity> ops =
        s.FindOpportunities(TransformKind::kCfo);
    if (ops.empty()) break;
    s.Apply(ops.front());
    ++applied;
  }
  return applied;
}

std::string TmpWalPath() { return "/tmp/pivot_bench_journal.wal"; }

std::uint64_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<std::uint64_t>(in.tellg()) : 0;
}

// Append cost: a fixed apply workload, committed bare / journaled /
// journaled+fsync. items_processed = committed operations.
void BM_JournalAppend(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const int sites = 64;
  for (auto _ : state) {
    state.PauseTiming();
    Session s(MakeFoldableProgram(sites));
    std::unique_ptr<DurableJournal> journal;
    if (mode > 0) {
      PersistOptions p;
      p.fsync = mode == 2;
      journal = DurableJournal::Create(s, TmpWalPath(), p);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(ApplyFolds(s, sites));
  }
  state.SetItemsProcessed(state.iterations() * sites);
  state.SetLabel(mode == 0   ? "no-journal"
                 : mode == 1 ? "journal"
                             : "journal+fsync");
}
BENCHMARK(BM_JournalAppend)->Arg(0)->Arg(1)->Arg(2)->ArgName("mode");

// The printed artifact + JSON: recovery latency across history lengths,
// snapshots off vs on. Returns false when the tail-replay bound is
// violated (replayed operations exceed the snapshot interval).
bool RecoveryLatencyStudy(BenchJson& json) {
  const bool smoke = BenchSmokeMode();
  const std::vector<int> histories =
      smoke ? std::vector<int>{8, 16} : std::vector<int>{100, 400, 1600};
  const int interval_on = smoke ? 4 : 64;
  const int reps = smoke ? 1 : 3;

  std::printf("== Recovery latency: full replay vs snapshot + tail ==\n");
  std::printf("%8s %9s %12s %9s %9s\n", "history", "snapshot", "recover_ms",
              "replayed", "bytes");
  bool tail_bound_ok = true;
  for (const int history : histories) {
    for (const int interval : {0, interval_on}) {
      const std::string path = TmpWalPath();
      {
        Session s(MakeFoldableProgram(history));
        PersistOptions p;
        p.snapshot_interval = interval;
        p.fsync = false;  // measure replay cost, not the build's fsyncs
        const auto journal = DurableJournal::Create(s, path, p);
        if (ApplyFolds(s, history) != history) {
          std::fprintf(stderr, "workload underfilled at history=%d\n",
                       history);
          return false;
        }
      }
      double best_ms = 0;
      std::uint64_t replayed = 0;
      for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        const RecoverResult result = Session::Recover(path);
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (r == 0 || ms < best_ms) best_ms = ms;
        replayed = result.report.txns_replayed;
        if (!result.report.validator_ok) {
          std::fprintf(stderr, "recovered state failed validation\n");
          return false;
        }
      }
      const std::uint64_t bytes = FileBytes(path);
      std::printf("%8d %9d %12.3f %9llu %9llu\n", history, interval, best_ms,
                  static_cast<unsigned long long>(replayed),
                  static_cast<unsigned long long>(bytes));
      json.Row()
          .Int("history", static_cast<std::uint64_t>(history))
          .Int("snapshot_interval", static_cast<std::uint64_t>(interval))
          .Num("recover_ms", best_ms)
          .Int("ops_replayed", replayed)
          .Int("journal_bytes", bytes);
      if (interval > 0 &&
          replayed > static_cast<std::uint64_t>(interval)) {
        std::fprintf(stderr,
                     "tail-replay bound violated: replayed %llu > "
                     "interval %d at history %d\n",
                     static_cast<unsigned long long>(replayed), interval,
                     history);
        tail_bound_ok = false;
      }
    }
  }
  std::printf("tail-replay bound (replayed <= snapshot interval): %s\n\n",
              tail_bound_ok ? "ok" : "VIOLATED");
  return tail_bound_ok;
}

// Compaction A/B (DESIGN.md §13): the same snapshot-enabled workload with
// retention off and on. With `compact` set, every durable full snapshot
// rewrites the journal down to genesis + that snapshot + the uncovered
// tail, so the file tracks the live image instead of the whole history.
// Gates (full mode, history 1600 / interval 64): the compacted journal is
// >= 5x smaller than the uncompacted one, and recovery from it stays
// within 2x of the uncompacted snapshot recovery. Smoke mode only checks
// that compaction shrinks the file and recovery validates.
bool CompactionStudy(BenchJson& json) {
  const bool smoke = BenchSmokeMode();
  const int history = smoke ? 16 : 1600;
  const int interval = smoke ? 4 : 64;
  const int reps = smoke ? 1 : 3;

  struct Mode {
    const char* name;
    bool compact;
    bool deltas;
  };
  // delta+compact is the informational third row: delta snapshots stretch
  // the full-snapshot (= compaction) cadence by full_snapshot_every.
  const Mode modes[] = {
      {"baseline", false, false},
      {"compacted", true, false},
      {"delta+compact", true, true},
  };

  std::printf("== Journal growth: compaction off vs on (history=%d) ==\n",
              history);
  std::printf("%14s %12s %9s %9s\n", "mode", "recover_ms", "replayed",
              "bytes");
  double baseline_ms = 0;
  double compacted_ms = 0;
  std::uint64_t baseline_bytes = 0;
  std::uint64_t compacted_bytes = 0;
  for (const Mode& mode : modes) {
    const std::string path = TmpWalPath();
    {
      Session s(MakeFoldableProgram(history));
      PersistOptions p;
      p.snapshot_interval = interval;
      p.fsync = false;  // measure the rewrite and replay, not fsyncs
      p.compact = mode.compact;
      p.delta_snapshots = mode.deltas;
      const auto journal = DurableJournal::Create(s, path, p);
      if (ApplyFolds(s, history) != history) {
        std::fprintf(stderr, "workload underfilled at history=%d\n",
                     history);
        return false;
      }
    }
    double best_ms = 0;
    std::uint64_t replayed = 0;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      const RecoverResult result = Session::Recover(path);
      const auto t1 = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (r == 0 || ms < best_ms) best_ms = ms;
      replayed = result.report.txns_replayed;
      if (!result.report.validator_ok) {
        std::fprintf(stderr, "recovered state failed validation (%s)\n",
                     mode.name);
        return false;
      }
    }
    const std::uint64_t bytes = FileBytes(path);
    std::printf("%14s %12.3f %9llu %9llu\n", mode.name, best_ms,
                static_cast<unsigned long long>(replayed),
                static_cast<unsigned long long>(bytes));
    json.Row()
        .Str("mode", mode.name)
        .Int("history", static_cast<std::uint64_t>(history))
        .Int("snapshot_interval", static_cast<std::uint64_t>(interval))
        .Num("recover_ms", best_ms)
        .Int("ops_replayed", replayed)
        .Int("journal_bytes", bytes);
    if (std::string(mode.name) == "baseline") {
      baseline_ms = best_ms;
      baseline_bytes = bytes;
    } else if (std::string(mode.name) == "compacted") {
      compacted_ms = best_ms;
      compacted_bytes = bytes;
    }
  }

  bool ok = true;
  if (baseline_bytes == 0 || compacted_bytes == 0) {
    std::fprintf(stderr, "compaction study produced an empty journal\n");
    return false;
  }
  if (compacted_bytes >= baseline_bytes) {
    std::fprintf(stderr,
                 "compaction did not shrink the journal: %llu >= %llu\n",
                 static_cast<unsigned long long>(compacted_bytes),
                 static_cast<unsigned long long>(baseline_bytes));
    ok = false;
  }
  if (!smoke) {
    if (compacted_bytes * 5 > baseline_bytes) {
      std::fprintf(stderr,
                   "size gate violated: compacted %llu bytes is not >=5x "
                   "smaller than baseline %llu\n",
                   static_cast<unsigned long long>(compacted_bytes),
                   static_cast<unsigned long long>(baseline_bytes));
      ok = false;
    }
    if (compacted_ms > 2.0 * baseline_ms) {
      std::fprintf(stderr,
                   "recovery gate violated: compacted %.3f ms exceeds 2x "
                   "baseline %.3f ms\n",
                   compacted_ms, baseline_ms);
      ok = false;
    }
  }
  std::printf("compaction gates (>=5x smaller, recovery <= 2x): %s\n\n",
              ok ? "ok" : "VIOLATED");
  return ok;
}

}  // namespace
}  // namespace pivot

int main(int argc, char** argv) {
  pivot::BenchJson json("journal");
  const bool recovery_ok = pivot::RecoveryLatencyStudy(json);
  const bool compaction_ok = pivot::CompactionStudy(json);
  const std::string out = json.WriteFile(".");
  if (!out.empty()) std::printf("wrote %s\n", out.c_str());
  if (!pivot::BenchSmokeMode()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return recovery_ok && compaction_ok ? 0 : 1;
}
