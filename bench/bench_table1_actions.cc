// Table 1 — "Actions and inverse actions."
//
// Regenerates the table from the implementation (every primitive action is
// applied and inverted, verifying apply∘inverse = identity on the program
// text) and benchmarks the throughput of each action/inverse pair.
#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>

#include "pivot/actions/journal.h"
#include "pivot/ir/parser.h"
#include "pivot/ir/printer.h"
#include "pivot/support/table.h"

namespace pivot {
namespace {

Program MakeProgram() {
  return Parse(R"(
a = 1
b = a + 2
do i = 1, 4
  c(i) = b * i
enddo
write c(2)
)");
}

void PrintTable1() {
  TextTable table({"Action", "Inverse Action", "round-trip verified"});

  auto probe = [&table](const char* action, const char* inverse,
                        const std::function<ActionId(Program&, Journal&)>&
                            apply) {
    Program p = MakeProgram();
    Journal j(p);
    const std::string before = ToSource(p);
    const ActionId id = apply(p, j);
    j.Invert(id);
    table.AddRow({action, inverse, ToSource(p) == before ? "yes" : "NO"});
  };

  probe("Delete (a)", "Add (orig_location, -, a)",
        [](Program& p, Journal& j) { return j.Delete(*p.top()[1], 1); });
  probe("Copy (a, location, c)", "Delete (c)",
        [](Program& p, Journal& j) {
          return j.Copy(*p.top()[0], nullptr, BodyKind::kMain, 2, 1);
        });
  probe("Move (a, location)", "Move (a, orig_location)",
        [](Program& p, Journal& j) {
          return j.Move(*p.top()[0], p.top()[2].get(), BodyKind::kMain, 0,
                        1);
        });
  probe("Add (location, description, a)", "Delete (a)",
        [](Program&, Journal& j) {
          return j.Add(MakeAssign(MakeVarRef("z"), MakeIntConst(0)),
                       nullptr, BodyKind::kMain, 1, 1, "Table 1 demo");
        });
  probe("Modify (exp(a), new_exp)", "Modify (new_exp(a), exp)",
        [](Program& p, Journal& j) {
          return j.Modify(*p.top()[1]->rhs, ParseExpr("a * 9"), 1);
        });

  std::cout << "== Table 1: actions and inverse actions ==\n"
            << table.Render() << '\n';
}

// Benchmark kernel: fresh journal per outer iteration, a small batch of
// apply+invert pairs inside, so journal scans stay constant-size.
constexpr int kBatch = 64;

void RunActionBench(benchmark::State& state,
                    const std::function<ActionId(Program&, Journal&)>& apply) {
  for (auto _ : state) {
    state.PauseTiming();
    Program p = MakeProgram();
    Journal j(p);
    state.ResumeTiming();
    for (int k = 0; k < kBatch; ++k) {
      const ActionId id = apply(p, j);
      j.Invert(id);
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void BM_DeleteInverse(benchmark::State& state) {
  RunActionBench(state, [](Program& p, Journal& j) {
    return j.Delete(*p.top()[1], 1);
  });
}
BENCHMARK(BM_DeleteInverse);

void BM_CopyInverse(benchmark::State& state) {
  RunActionBench(state, [](Program& p, Journal& j) {
    return j.Copy(*p.top()[2], nullptr, BodyKind::kMain, 3, 1);
  });
}
BENCHMARK(BM_CopyInverse);

void BM_MoveInverse(benchmark::State& state) {
  RunActionBench(state, [](Program& p, Journal& j) {
    return j.Move(*p.top()[0], p.top()[2].get(), BodyKind::kMain, 0, 1);
  });
}
BENCHMARK(BM_MoveInverse);

void BM_AddInverse(benchmark::State& state) {
  RunActionBench(state, [](Program&, Journal& j) {
    return j.Add(MakeAssign(MakeVarRef("z"), MakeIntConst(0)), nullptr,
                 BodyKind::kMain, 1, 1, "bench");
  });
}
BENCHMARK(BM_AddInverse);

void BM_ModifyInverse(benchmark::State& state) {
  RunActionBench(state, [](Program& p, Journal& j) {
    return j.Modify(*p.top()[1]->rhs, ParseExpr("a * 9"), 1);
  });
}
BENCHMARK(BM_ModifyInverse);

void BM_ModifyHeaderInverse(benchmark::State& state) {
  RunActionBench(state, [](Program& p, Journal& j) {
    return j.ModifyHeader(*p.top()[2], "k", ParseExpr("2"), ParseExpr("8"),
                          ParseExpr("2"), 1);
  });
}
BENCHMARK(BM_ModifyHeaderInverse);

}  // namespace
}  // namespace pivot

int main(int argc, char** argv) {
  pivot::PrintTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
