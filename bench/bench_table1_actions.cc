// Table 1 — "Actions and inverse actions."
//
// Regenerates the table from the implementation (every primitive action is
// applied and inverted, verifying apply∘inverse = identity on the program
// text) and benchmarks the throughput of each action/inverse pair.
#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <sstream>
#include <iostream>

#include "pivot/actions/journal.h"
#include "pivot/ir/parser.h"
#include "pivot/ir/printer.h"
#include "pivot/support/benchjson.h"
#include "pivot/support/table.h"

namespace pivot {
namespace {

Program MakeProgram() {
  return Parse(R"(
a = 1
b = a + 2
do i = 1, 4
  c(i) = b * i
enddo
write c(2)
)");
}

// Regenerates Table 1 and micro-times each apply+invert pair (the
// inversion hot path the undo planner batches). The round-trip identity
// is asserted — a "NO" row fails the binary — and the per-op timings go
// into BENCH_table1_actions.json so CI can diff the hot path across
// commits.
bool PrintTable1(BenchJson& json) {
  TextTable table({"Action", "Inverse Action", "round-trip verified",
                   "ns/op"});
  bool ok = true;

  const int kTimedPairs = BenchSmokeMode() ? 64 : 2048;
  auto probe = [&](const char* action, const char* inverse,
                   const std::function<ActionId(Program&, Journal&)>&
                       apply) {
    Program p = MakeProgram();
    Journal j(p);
    const std::string before = ToSource(p);
    const ActionId id = apply(p, j);
    j.Invert(id);
    const bool roundtrip = ToSource(p) == before;
    ok = ok && roundtrip;

    // Timed batch on a fresh journal: apply+invert in a tight loop, the
    // same reverse-order inversion pattern UndoEngine::InvertActions
    // drives (pre-sized buffers, payload moves — no per-op reallocation).
    Program tp = MakeProgram();
    Journal tj(tp);
    const auto t0 = std::chrono::steady_clock::now();
    for (int k = 0; k < kTimedPairs; ++k) {
      tj.Invert(apply(tp, tj));
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ns_per_op =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        (2.0 * kTimedPairs);
    std::ostringstream ns;
    ns.precision(0);
    ns << std::fixed << ns_per_op;
    table.AddRow({action, inverse, roundtrip ? "yes" : "NO", ns.str()});
    json.Row()
        .Str("action", action)
        .Str("inverse", inverse)
        .Str("roundtrip", roundtrip ? "yes" : "no")
        .Num("ns_per_op", ns_per_op);
  };

  probe("Delete (a)", "Add (orig_location, -, a)",
        [](Program& p, Journal& j) { return j.Delete(*p.top()[1], 1); });
  probe("Copy (a, location, c)", "Delete (c)",
        [](Program& p, Journal& j) {
          return j.Copy(*p.top()[0], nullptr, BodyKind::kMain, 2, 1);
        });
  probe("Move (a, location)", "Move (a, orig_location)",
        [](Program& p, Journal& j) {
          return j.Move(*p.top()[0], p.top()[2].get(), BodyKind::kMain, 0,
                        1);
        });
  probe("Add (location, description, a)", "Delete (a)",
        [](Program&, Journal& j) {
          return j.Add(MakeAssign(MakeVarRef("z"), MakeIntConst(0)),
                       nullptr, BodyKind::kMain, 1, 1, "Table 1 demo");
        });
  probe("Modify (exp(a), new_exp)", "Modify (new_exp(a), exp)",
        [](Program& p, Journal& j) {
          return j.Modify(*p.top()[1]->rhs, ParseExpr("a * 9"), 1);
        });

  std::cout << "== Table 1: actions and inverse actions ==\n"
            << table.Render() << '\n';
  if (!ok) std::cerr << "FAIL: an action/inverse round-trip diverged\n";
  return ok;
}

// Benchmark kernel: fresh journal per outer iteration, a small batch of
// apply+invert pairs inside, so journal scans stay constant-size.
constexpr int kBatch = 64;

void RunActionBench(benchmark::State& state,
                    const std::function<ActionId(Program&, Journal&)>& apply) {
  for (auto _ : state) {
    state.PauseTiming();
    Program p = MakeProgram();
    Journal j(p);
    state.ResumeTiming();
    for (int k = 0; k < kBatch; ++k) {
      const ActionId id = apply(p, j);
      j.Invert(id);
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void BM_DeleteInverse(benchmark::State& state) {
  RunActionBench(state, [](Program& p, Journal& j) {
    return j.Delete(*p.top()[1], 1);
  });
}
BENCHMARK(BM_DeleteInverse);

void BM_CopyInverse(benchmark::State& state) {
  RunActionBench(state, [](Program& p, Journal& j) {
    return j.Copy(*p.top()[2], nullptr, BodyKind::kMain, 3, 1);
  });
}
BENCHMARK(BM_CopyInverse);

void BM_MoveInverse(benchmark::State& state) {
  RunActionBench(state, [](Program& p, Journal& j) {
    return j.Move(*p.top()[0], p.top()[2].get(), BodyKind::kMain, 0, 1);
  });
}
BENCHMARK(BM_MoveInverse);

void BM_AddInverse(benchmark::State& state) {
  RunActionBench(state, [](Program&, Journal& j) {
    return j.Add(MakeAssign(MakeVarRef("z"), MakeIntConst(0)), nullptr,
                 BodyKind::kMain, 1, 1, "bench");
  });
}
BENCHMARK(BM_AddInverse);

void BM_ModifyInverse(benchmark::State& state) {
  RunActionBench(state, [](Program& p, Journal& j) {
    return j.Modify(*p.top()[1]->rhs, ParseExpr("a * 9"), 1);
  });
}
BENCHMARK(BM_ModifyInverse);

void BM_ModifyHeaderInverse(benchmark::State& state) {
  RunActionBench(state, [](Program& p, Journal& j) {
    return j.ModifyHeader(*p.top()[2], "k", ParseExpr("2"), ParseExpr("8"),
                          ParseExpr("2"), 1);
  });
}
BENCHMARK(BM_ModifyHeaderInverse);

}  // namespace
}  // namespace pivot

int main(int argc, char** argv) {
  pivot::BenchJson json("table1_actions");
  const bool ok = pivot::PrintTable1(json);
  const std::string path = json.WriteFile();
  if (!path.empty()) std::cout << "wrote " << path << '\n';
  if (pivot::BenchSmokeMode()) return ok ? 0 : 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return ok ? 0 : 1;
}
