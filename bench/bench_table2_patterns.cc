// Table 2 — "Information to be stored."
//
// Regenerates the pre_pattern / primitive-action / post_pattern schema for
// all ten transformations, then instantiates the patterns by actually
// applying each transformation on a probe program and printing the
// recorded history entry. Benchmarks: the cost of recording a pattern
// (apply with full history) and of validating a post_pattern
// (CheckReversibility).
#include <benchmark/benchmark.h>

#include <iostream>
#include <optional>

#include "pivot/core/session.h"
#include "pivot/ir/parser.h"
#include "pivot/support/benchjson.h"
#include "pivot/support/table.h"
#include "pivot/transform/catalog.h"
#include "pivot/transform/patterns.h"

namespace pivot {
namespace {

// One probe program containing an opportunity for every transformation.
const char* kProbe = R"(
read u
c = 2
d = e + f
r = e + f
t = c + 3
t2 = t
dead = 1
dead = 2
do i = 1, 5
  a(i) = u + i
enddo
do i = 1, 5
  b(i) = a(i) * 2
enddo
do k = 1, 3
  do l = 1, 5
    m(k, l) = k - l
  enddo
enddo
do z = 1, 8
  g(z) = z
enddo
do w = 1, 4
  h(w) = h(w) + 1
enddo
do v = 1, 3
  inv = u + 1
  p(v) = inv + v
enddo
write r
write t2
write dead
write a(2)
write b(3)
write m(2, 4)
write g(5)
write h(2)
write p(1)
write inv
write d
write c
)";

void PrintSchema() {
  TextTable table(
      {"Transformation", "Pre_pattern", "Primitive Actions", "Post_pattern"});
  for (int i = 0; i < kNumTransformKinds; ++i) {
    const PatternRow row = DescribePatterns(TransformKindFromIndex(i));
    table.AddRow({row.transform, row.pre_pattern, row.primitive_actions,
                  row.post_pattern});
  }
  std::cout << "== Table 2: information to be stored (schema) ==\n"
            << table.Render() << '\n';
}

void PrintInstantiated() {
  Session s(Parse(kProbe));
  TextTable table({"t", "Transformation", "Recorded actions"});
  for (TransformKind kind : AllTransformKinds()) {
    const std::optional<OrderStamp> stamp = s.ApplyFirst(kind);
    if (!stamp) {
      table.AddRow({"-", TransformKindName(kind), "(no opportunity)"});
      continue;
    }
    const TransformRecord* rec = s.history().FindByStamp(*stamp);
    const PatternRow row = DescribeRecord(s.program(), s.journal(), *rec);
    table.AddRow({"t" + std::to_string(*stamp), row.transform,
                  row.primitive_actions});
  }
  std::cout << "== Table 2 instantiated on the probe program ==\n"
            << table.Render() << '\n';
}

void BM_RecordPattern(benchmark::State& state) {
  const TransformKind kind = TransformKindFromIndex(
      static_cast<int>(state.range(0)));
  std::size_t applied = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Session s(Parse(kProbe));
    const auto ops = s.FindOpportunities(kind);
    state.ResumeTiming();
    if (!ops.empty()) {
      s.Apply(ops.front());
      ++applied;
    }
  }
  state.counters["applied"] = static_cast<double>(applied);
  state.SetLabel(TransformKindName(kind));
}
BENCHMARK(BM_RecordPattern)->DenseRange(0, kNumTransformKinds - 1);

void BM_ValidatePostPattern(benchmark::State& state) {
  const TransformKind kind = TransformKindFromIndex(
      static_cast<int>(state.range(0)));
  Session s(Parse(kProbe));
  const auto stamp = s.ApplyFirst(kind);
  if (!stamp) {
    state.SkipWithError("no opportunity");
    return;
  }
  const TransformRecord* rec = s.history().FindByStamp(*stamp);
  const Transformation& t = GetTransformation(kind);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        t.CheckReversibility(s.analyses(), s.journal(), *rec));
  }
  state.SetLabel(TransformKindName(kind));
}
BENCHMARK(BM_ValidatePostPattern)->DenseRange(0, kNumTransformKinds - 1);

void BM_CheckSafety(benchmark::State& state) {
  const TransformKind kind = TransformKindFromIndex(
      static_cast<int>(state.range(0)));
  Session s(Parse(kProbe));
  const auto stamp = s.ApplyFirst(kind);
  if (!stamp) {
    state.SkipWithError("no opportunity");
    return;
  }
  const TransformRecord* rec = s.history().FindByStamp(*stamp);
  const Transformation& t = GetTransformation(kind);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.CheckSafety(s.analyses(), s.journal(), *rec));
  }
  state.SetLabel(TransformKindName(kind));
}
BENCHMARK(BM_CheckSafety)->DenseRange(0, kNumTransformKinds - 1);

}  // namespace
}  // namespace pivot

int main(int argc, char** argv) {
  pivot::PrintSchema();
  pivot::PrintInstantiated();
  if (pivot::BenchSmokeMode()) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
