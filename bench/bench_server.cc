// Server throughput study: what group commit buys (DESIGN.md §12), what
// session passivation costs (§15), and what the socket transports add.
//
// BENCH_journal puts one durable commit at ~145 µs, almost all fsync(2).
// With N concurrent sessions committing, per-commit fsync serializes N
// syncs behind the journal locks; the group-commit log batches every
// in-flight frame into one fsync. The first study drives C client threads
// (each its own hosted session, alternating apply/undo commits through
// PivotServer::Execute) in both modes and reports txn/s:
//
//   clients x {per-commit fsync, group commit}, C in {1, 64, 1024}
//
// The deterministic gate: at 64 clients, group commit must deliver at
// least 5x the per-commit throughput — that is the headline robustness
// claim of the batching design, and the exit code enforces it.
//
// The eviction study opens 1000 idle sessions under a memory budget
// calibrated to hold ~64 of them resident: the byte-accounted LRU must
// keep stats().resident_bytes under the budget the whole way (exit-code
// gated), and a sample of passivated sessions is then reactivated with
// the per-request latency and correctness checked.
//
// The socket study runs the same commit workload through a real
// ServerListener over the unix socket and over TCP loopback, reporting
// framed request/s per transport.
//
// Results land in BENCH_server.json; EXPERIMENTS.md holds reference runs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "pivot/core/session.h"
#include "pivot/ir/parser.h"
#include "pivot/server/listener.h"
#include "pivot/server/protocol.h"
#include "pivot/server/server.h"
#include "pivot/support/benchjson.h"
#include "pivot/transform/transform.h"

namespace pivot {
namespace {

const char kSource[] =
    "y = 3 * 4\n"
    "z = 5 * 6\n"
    "write y\n"
    "write z\n";

std::string DataDir() { return "/tmp/pivot_bench_server"; }

struct RunResult {
  double seconds = 0;
  std::uint64_t commits = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t max_batch = 0;
  double TxnPerSec() const {
    return seconds > 0 ? static_cast<double>(commits) / seconds : 0;
  }
};

// C threads, each committing `ops` transactions against its own session.
// Sessions are opened (and their genesis frames flushed) outside the
// timed region: the measurement is the steady-state commit path.
RunResult RunWorkload(int clients, int ops, bool group_fsync) {
  std::filesystem::remove_all(DataDir());
  ServerOptions options;
  options.data_dir = DataDir();
  options.commit.group_fsync = group_fsync;
  // Capacity for the largest fleet: admission control is not under test.
  options.max_inflight = clients + 16;
  options.commit.max_queue = 2 * clients + 16;
  PivotServer server(std::move(options));

  for (int i = 0; i < clients; ++i) {
    Request open;
    open.op = ServerOp::kOpen;
    open.session = "s" + std::to_string(i);
    open.source = kSource;
    const Response resp = server.Execute(open);
    if (resp.status != StatusCode::kOk) {
      std::fprintf(stderr, "open failed: %s\n", resp.error.c_str());
      return {};
    }
  }
  const std::uint64_t fsyncs_before = server.stats().group.fsyncs;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&server, i, ops] {
      const std::string name = "s" + std::to_string(i);
      for (int op = 0; op < ops; ++op) {
        Request req;
        req.session = name;
        if (op % 2 == 0) {
          req.op = ServerOp::kApply;
          req.kind = TransformKindIndex(TransformKind::kCfo);
          req.op_index = 0;
        } else {
          req.op = ServerOp::kUndoLast;
        }
        const Response resp = server.Execute(req);
        if (resp.status != StatusCode::kOk) {
          std::fprintf(stderr, "commit failed: %s\n", resp.error.c_str());
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.commits = static_cast<std::uint64_t>(clients) *
              static_cast<std::uint64_t>(ops);
  const ServerStats stats = server.stats();
  r.fsyncs = stats.group.fsyncs - fsyncs_before;
  r.max_batch = stats.group.max_batch;
  server.Drain();
  return r;
}

bool ThroughputStudy(BenchJson& json) {
  const bool smoke = BenchSmokeMode();
  const std::vector<int> fleets =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 64, 1024};
  // Roughly constant total commits per run so every row takes comparable
  // wall time; at least two ops each so apply/undo both appear.
  const int total = smoke ? 16 : 2048;

  std::printf("== Server commit throughput: per-commit fsync vs group ==\n");
  std::printf("%8s %10s %10s %12s %10s %10s\n", "clients", "mode", "txns",
              "txn/s", "fsyncs", "max_batch");
  double per_commit_64 = 0, group_64 = 0;
  for (const int clients : fleets) {
    const int ops = std::max(2, total / clients);
    for (const bool group_fsync : {false, true}) {
      const RunResult r = RunWorkload(clients, ops, group_fsync);
      if (r.commits == 0) return false;
      const char* mode = group_fsync ? "group" : "per-commit";
      std::printf("%8d %10s %10llu %12.0f %10llu %10llu\n", clients, mode,
                  static_cast<unsigned long long>(r.commits), r.TxnPerSec(),
                  static_cast<unsigned long long>(r.fsyncs),
                  static_cast<unsigned long long>(r.max_batch));
      json.Row()
          .Str("section", "throughput")
          .Int("clients", static_cast<std::uint64_t>(clients))
          .Str("mode", mode)
          .Int("txns", r.commits)
          .Num("txn_per_sec", r.TxnPerSec())
          .Int("fsyncs", r.fsyncs)
          .Int("max_batch", r.max_batch);
      if (clients == 64) {
        (group_fsync ? group_64 : per_commit_64) = r.TxnPerSec();
      }
    }
  }

  if (smoke) return true;  // the gate needs the real 64-client fleet
  const double speedup = per_commit_64 > 0 ? group_64 / per_commit_64 : 0;
  std::printf("group-commit speedup at 64 clients: %.1fx (gate: >= 5x)\n",
              speedup);
  return speedup >= 5.0;
}

// Opens a big fleet of idle sessions under a byte budget sized for a
// fraction of them, verifying the LRU keeps the resident footprint under
// the cap throughout, then reactivates a sample and times it.
bool EvictionStudy(BenchJson& json) {
  const bool smoke = BenchSmokeMode();
  const int sessions = smoke ? 32 : 1000;
  const int resident_target = smoke ? 8 : 64;

  // Calibrate: one hosted session's estimated footprint, measured rather
  // than assumed, so the budget means the same thing across compilers and
  // libstdc++ versions.
  std::uint64_t per_session = 0;
  {
    std::filesystem::remove_all(DataDir());
    ServerOptions options;
    options.data_dir = DataDir();
    PivotServer server(std::move(options));
    Request open;
    open.op = ServerOp::kOpen;
    open.session = "probe";
    open.source = kSource;
    if (server.Execute(open).status != StatusCode::kOk) return false;
    per_session = server.stats().resident_bytes;
    server.Drain();
  }
  if (per_session == 0) return false;
  const std::uint64_t budget =
      per_session * static_cast<std::uint64_t>(resident_target);

  std::filesystem::remove_all(DataDir());
  ServerOptions options;
  options.data_dir = DataDir();
  options.lifecycle.memory_budget_bytes = budget;
  PivotServer server(std::move(options));

  std::uint64_t peak_resident = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < sessions; ++i) {
    Request open;
    open.op = ServerOp::kOpen;
    open.session = "s" + std::to_string(i);
    open.source = kSource;
    const Response resp = server.Execute(open);
    if (resp.status != StatusCode::kOk) {
      std::fprintf(stderr, "open failed: %s\n", resp.error.c_str());
      return false;
    }
    peak_resident = std::max(peak_resident, server.stats().resident_bytes);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double open_secs = std::chrono::duration<double>(t1 - t0).count();
  const ServerStats after_opens = server.stats();

  // Reactivate a sample of long-passivated sessions (the oldest are
  // certainly out) and verify each comes back with the right program.
  const std::string want = Session{Parse(kSource)}.Source();
  const int sample = std::min(sessions, 2 * resident_target);
  const auto t2 = std::chrono::steady_clock::now();
  for (int i = 0; i < sample; ++i) {
    Request src;
    src.op = ServerOp::kSource;
    src.session = "s" + std::to_string(i);
    const Response resp = server.Execute(src);
    if (resp.status != StatusCode::kOk || resp.text != want) {
      std::fprintf(stderr, "reactivation of s%d came back wrong: %s\n", i,
                   resp.error.c_str());
      return false;
    }
  }
  const auto t3 = std::chrono::steady_clock::now();
  const double react_us =
      std::chrono::duration<double, std::micro>(t3 - t2).count() / sample;
  const ServerStats final_stats = server.stats();
  server.Drain();

  std::printf("\n== Session eviction: %d idle sessions, budget for %d ==\n",
              sessions, resident_target);
  std::printf(
      "budget=%llu peak_resident=%llu passivations=%llu "
      "reactivations=%llu open/s=%.0f reactivate=%.0fus\n",
      static_cast<unsigned long long>(budget),
      static_cast<unsigned long long>(peak_resident),
      static_cast<unsigned long long>(final_stats.passivations),
      static_cast<unsigned long long>(final_stats.reactivations),
      open_secs > 0 ? sessions / open_secs : 0, react_us);
  json.Row()
      .Str("section", "eviction")
      .Int("sessions", static_cast<std::uint64_t>(sessions))
      .Int("budget_bytes", budget)
      .Int("peak_resident_bytes", peak_resident)
      .Int("passivations", final_stats.passivations)
      .Int("reactivations", final_stats.reactivations)
      .Num("open_per_sec", open_secs > 0 ? sessions / open_secs : 0)
      .Num("reactivate_us", react_us);

  // The gate: the budget held the whole time, and the sample reactivated.
  if (peak_resident > budget) {
    std::printf("FAIL: resident bytes %llu exceeded the %llu budget\n",
                static_cast<unsigned long long>(peak_resident),
                static_cast<unsigned long long>(budget));
    return false;
  }
  if (final_stats.reactivations < static_cast<std::uint64_t>(
                                      sample - resident_target)) {
    std::printf("FAIL: expected the sample to mostly reactivate\n");
    return false;
  }
  return true;
}

// The same alternating commit workload pushed through a real listener:
// one persistent connection per transport, framed request/response.
bool SocketStudy(BenchJson& json) {
  const bool smoke = BenchSmokeMode();
  const int reqs = smoke ? 16 : 2048;

  std::filesystem::remove_all(DataDir());
  ServerOptions options;
  options.data_dir = DataDir();
  PivotServer server(std::move(options));
  ListenerOptions lo;
  lo.unix_path = DataDir() + ".sock";
  lo.tcp_host = "127.0.0.1";
  lo.tcp_port = 0;
  ServerListener listener(server, lo);
  std::thread accept_loop([&listener] { listener.Run(); });

  std::printf("\n== Socket transports: framed commits over one connection ==\n");
  std::printf("%8s %10s %12s\n", "kind", "reqs", "req/s");
  bool ok = true;
  for (const bool tcp : {false, true}) {
    const int fd = tcp ? DialTcp("127.0.0.1", listener.tcp_port())
                       : DialUnix(lo.unix_path);
    if (fd < 0) {
      std::fprintf(stderr, "dial failed\n");
      ok = false;
      break;
    }
    const std::string name = tcp ? "sock_tcp" : "sock_unix";
    Request open;
    open.op = ServerOp::kOpen;
    open.session = name;
    open.source = kSource;
    WriteMessage(fd, EncodeRequest(open));
    std::string payload;
    if (!ReadMessage(fd, &payload) ||
        DecodeResponse(payload).status != StatusCode::kOk) {
      std::fprintf(stderr, "open over socket failed\n");
      ::close(fd);
      ok = false;
      break;
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (int op = 0; op < reqs && ok; ++op) {
      Request req;
      req.session = name;
      if (op % 2 == 0) {
        req.op = ServerOp::kApply;
        req.kind = TransformKindIndex(TransformKind::kCfo);
        req.op_index = 0;
      } else {
        req.op = ServerOp::kUndoLast;
      }
      WriteMessage(fd, EncodeRequest(req));
      if (!ReadMessage(fd, &payload) ||
          DecodeResponse(payload).status != StatusCode::kOk) {
        std::fprintf(stderr, "commit over socket failed\n");
        ok = false;
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    ::close(fd);
    if (!ok) break;
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const double rate = secs > 0 ? reqs / secs : 0;
    std::printf("%8s %10d %12.0f\n", tcp ? "tcp" : "unix", reqs, rate);
    json.Row()
        .Str("section", "socket")
        .Str("transport", tcp ? "tcp" : "unix")
        .Int("reqs", static_cast<std::uint64_t>(reqs))
        .Num("req_per_sec", rate);
  }

  listener.Shutdown();
  accept_loop.join();
  server.Drain();
  return ok;
}

bool RunAll() {
  BenchJson json("server");
  bool ok = ThroughputStudy(json);
  ok = EvictionStudy(json) && ok;
  ok = SocketStudy(json) && ok;
  const std::string out = json.WriteFile(".");
  if (!out.empty()) std::printf("wrote %s\n", out.c_str());
  return ok;
}

}  // namespace
}  // namespace pivot

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);  // accept the standard flags
  return pivot::RunAll() ? 0 : 1;
}
