// Server throughput study: what group commit buys (DESIGN.md §12).
//
// BENCH_journal puts one durable commit at ~145 µs, almost all fsync(2).
// With N concurrent sessions committing, per-commit fsync serializes N
// syncs behind the journal locks; the group-commit log batches every
// in-flight frame into one fsync. This study drives C client threads
// (each its own hosted session, alternating apply/undo commits through
// PivotServer::Execute) in both modes and reports txn/s:
//
//   clients x {per-commit fsync, group commit}, C in {1, 64, 1024}
//
// The deterministic gate: at 64 clients, group commit must deliver at
// least 5x the per-commit throughput — that is the headline robustness
// claim of the batching design, and the exit code enforces it. Results
// land in BENCH_server.json; EXPERIMENTS.md holds a reference run.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "pivot/server/protocol.h"
#include "pivot/server/server.h"
#include "pivot/support/benchjson.h"
#include "pivot/transform/transform.h"

namespace pivot {
namespace {

const char kSource[] =
    "y = 3 * 4\n"
    "z = 5 * 6\n"
    "write y\n"
    "write z\n";

std::string DataDir() { return "/tmp/pivot_bench_server"; }

struct RunResult {
  double seconds = 0;
  std::uint64_t commits = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t max_batch = 0;
  double TxnPerSec() const {
    return seconds > 0 ? static_cast<double>(commits) / seconds : 0;
  }
};

// C threads, each committing `ops` transactions against its own session.
// Sessions are opened (and their genesis frames flushed) outside the
// timed region: the measurement is the steady-state commit path.
RunResult RunWorkload(int clients, int ops, bool group_fsync) {
  std::filesystem::remove_all(DataDir());
  ServerOptions options;
  options.data_dir = DataDir();
  options.commit.group_fsync = group_fsync;
  // Capacity for the largest fleet: admission control is not under test.
  options.max_inflight = clients + 16;
  options.commit.max_queue = 2 * clients + 16;
  PivotServer server(std::move(options));

  for (int i = 0; i < clients; ++i) {
    Request open;
    open.op = ServerOp::kOpen;
    open.session = "s" + std::to_string(i);
    open.source = kSource;
    const Response resp = server.Execute(open);
    if (resp.status != StatusCode::kOk) {
      std::fprintf(stderr, "open failed: %s\n", resp.error.c_str());
      return {};
    }
  }
  const std::uint64_t fsyncs_before = server.stats().group.fsyncs;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&server, i, ops] {
      const std::string name = "s" + std::to_string(i);
      for (int op = 0; op < ops; ++op) {
        Request req;
        req.session = name;
        if (op % 2 == 0) {
          req.op = ServerOp::kApply;
          req.kind = TransformKindIndex(TransformKind::kCfo);
          req.op_index = 0;
        } else {
          req.op = ServerOp::kUndoLast;
        }
        const Response resp = server.Execute(req);
        if (resp.status != StatusCode::kOk) {
          std::fprintf(stderr, "commit failed: %s\n", resp.error.c_str());
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.commits = static_cast<std::uint64_t>(clients) *
              static_cast<std::uint64_t>(ops);
  const ServerStats stats = server.stats();
  r.fsyncs = stats.group.fsyncs - fsyncs_before;
  r.max_batch = stats.group.max_batch;
  server.Drain();
  return r;
}

bool ThroughputStudy() {
  const bool smoke = BenchSmokeMode();
  const std::vector<int> fleets =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 64, 1024};
  // Roughly constant total commits per run so every row takes comparable
  // wall time; at least two ops each so apply/undo both appear.
  const int total = smoke ? 16 : 2048;

  BenchJson json("server");
  std::printf("== Server commit throughput: per-commit fsync vs group ==\n");
  std::printf("%8s %10s %10s %12s %10s %10s\n", "clients", "mode", "txns",
              "txn/s", "fsyncs", "max_batch");
  double per_commit_64 = 0, group_64 = 0;
  for (const int clients : fleets) {
    const int ops = std::max(2, total / clients);
    for (const bool group_fsync : {false, true}) {
      const RunResult r = RunWorkload(clients, ops, group_fsync);
      if (r.commits == 0) return false;
      const char* mode = group_fsync ? "group" : "per-commit";
      std::printf("%8d %10s %10llu %12.0f %10llu %10llu\n", clients, mode,
                  static_cast<unsigned long long>(r.commits), r.TxnPerSec(),
                  static_cast<unsigned long long>(r.fsyncs),
                  static_cast<unsigned long long>(r.max_batch));
      json.Row()
          .Int("clients", static_cast<std::uint64_t>(clients))
          .Str("mode", mode)
          .Int("txns", r.commits)
          .Num("txn_per_sec", r.TxnPerSec())
          .Int("fsyncs", r.fsyncs)
          .Int("max_batch", r.max_batch);
      if (clients == 64) {
        (group_fsync ? group_64 : per_commit_64) = r.TxnPerSec();
      }
    }
  }
  const std::string out = json.WriteFile(".");
  if (!out.empty()) std::printf("wrote %s\n", out.c_str());

  if (smoke) return true;  // the gate needs the real 64-client fleet
  const double speedup = per_commit_64 > 0 ? group_64 / per_commit_64 : 0;
  std::printf("group-commit speedup at 64 clients: %.1fx (gate: >= 5x)\n",
              speedup);
  return speedup >= 5.0;
}

}  // namespace
}  // namespace pivot

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);  // accept the standard flags
  return pivot::ThroughputStudy() ? 0 : 1;
}
