// Figure 4 — the UNDO algorithm: the "experimental studies" the paper
// defers to future work (§6).
//
// Workload: K independent clusters, each enabling a CTP -> CFO -> DCE
// chain (3K transformations total, applied phase by phase so undoing an
// early transformation has a long suffix of later ones). Three strategies
// remove the first cluster's CTP:
//
//   independent     — the paper's Figure-4 UNDO: recursive affecting /
//                     affected analysis; only the victim's own chain (3
//                     transformations) is unwound;
//   reverse-suffix  — the prior-work baseline [5]: undo in reverse
//                     application order until the victim is gone (all 3K
//                     transformations unwound);
//   redo-all        — the incremental-reoptimization strawman: rebuild
//                     from the original source, re-applying everything
//                     except the victim's chain.
//
// Ablation: the reverse-destroy heuristic (published Table 4 vs. the
// conservative all-'x' table) and the event-driven regional analysis
// (on/off), reported as candidate/safety-check counts.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "pivot/core/session.h"
#include "pivot/ir/parser.h"
#include "pivot/support/benchjson.h"
#include "pivot/support/table.h"

namespace pivot {
namespace {

std::string ClusterSource(int clusters) {
  std::ostringstream os;
  for (int k = 0; k < clusters; ++k) {
    os << "c" << k << " = 1\n";
    os << "x" << k << " = c" << k << " + 2\n";
  }
  for (int k = 0; k < clusters; ++k) {
    os << "write x" << k << "\n";
  }
  return os.str();
}

struct Applied {
  std::vector<OrderStamp> ctps, cfos, dces;
};

Applied ApplyChains(Session& s, int clusters) {
  Applied applied;
  for (int k = 0; k < clusters; ++k) {
    applied.ctps.push_back(*s.ApplyFirst(TransformKind::kCtp));
  }
  for (int k = 0; k < clusters; ++k) {
    applied.cfos.push_back(*s.ApplyFirst(TransformKind::kCfo));
  }
  for (int k = 0; k < clusters; ++k) {
    applied.dces.push_back(*s.ApplyFirst(TransformKind::kDce));
  }
  return applied;
}

int LiveCount(Session& s) {
  return static_cast<int>(s.history().Live().size());
}

// Full runs sweep to 32 clusters; the bench-smoke ctest entry caps the
// sweep so every table still prints without the tier-1 run crawling.
std::vector<int> ClusterSweep() {
  return BenchSmokeMode() ? std::vector<int>{4, 8}
                          : std::vector<int>{4, 8, 16, 32};
}

void PrintScalingTable(BenchJson& json) {
  TextTable table({"clusters", "applied", "independent: undone",
                   "independent: safety checks",
                   "independent: analysis rebuilds",
                   "reverse-suffix: undone", "redo-all: re-applied"});
  for (int clusters : ClusterSweep()) {
    const std::string src = ClusterSource(clusters);

    // Independent order (the paper's algorithm).
    int indep_undone = 0, indep_safety = 0;
    std::uint64_t indep_rebuilds = 0;
    {
      Session s(Parse(src));
      const Applied applied = ApplyChains(s, clusters);
      const int before = LiveCount(s);
      const UndoStats stats = s.Undo(applied.ctps[0]);
      indep_undone = before - LiveCount(s);
      indep_safety = stats.safety_checks;
      indep_rebuilds = stats.analysis_rebuilds;  // Figure 4 line 13 cost
    }

    // Reverse application order until the victim is gone.
    int reverse_undone = 0;
    {
      Session s(Parse(src));
      const Applied applied = ApplyChains(s, clusters);
      while (!s.history().FindByStamp(applied.ctps[0])->undone) {
        s.UndoLast();
        ++reverse_undone;
      }
    }

    // Redo everything except the victim's chain from scratch.
    int redo_applied = 0;
    {
      Session s(Parse(src));
      // Skip cluster 0 entirely: apply the other clusters' chains.
      for (TransformKind kind :
           {TransformKind::kCtp, TransformKind::kCfo, TransformKind::kDce}) {
        const auto ops = s.FindOpportunities(kind);
        (void)ops;
        for (int k = 1; k < clusters; ++k) {
          const auto fresh = s.FindOpportunities(kind);
          // Applying any opportunity not belonging to cluster 0.
          for (const auto& op : fresh) {
            if (op.Describe(s.program()).find("c0") == std::string::npos &&
                op.Describe(s.program()).find("x0") == std::string::npos) {
              s.Apply(op);
              ++redo_applied;
              break;
            }
          }
        }
      }
    }

    table.AddRow({std::to_string(clusters), std::to_string(3 * clusters),
                  std::to_string(indep_undone), std::to_string(indep_safety),
                  std::to_string(indep_rebuilds),
                  std::to_string(reverse_undone),
                  std::to_string(redo_applied)});
    json.Row()
        .Str("experiment", "scaling")
        .Int("clusters", static_cast<std::uint64_t>(clusters))
        .Int("applied", static_cast<std::uint64_t>(3 * clusters))
        .Int("independent_undone", static_cast<std::uint64_t>(indep_undone))
        .Int("independent_safety_checks",
             static_cast<std::uint64_t>(indep_safety))
        .Int("independent_analysis_rebuilds", indep_rebuilds)
        .Int("reverse_suffix_undone",
             static_cast<std::uint64_t>(reverse_undone))
        .Int("redo_all_reapplied", static_cast<std::uint64_t>(redo_applied));
  }
  std::cout << "== Figure 4 experiment: undoing the first CTP out of 3K "
               "transformations ==\n"
            << table.Render() << '\n';
}

// A/B: the same workload (apply 3K transformations, undo the first CTP)
// with the analysis cache's region-scoped incremental invalidation off
// (baseline: every epoch drops every family) vs on (expression-only
// windows — every CTP/CFO Modify — retain the structural families).
// Reports session-wide family rebuild counts and workload wall-clock,
// averaged over repeats. The undo itself re-inserts a DCE-deleted
// statement (structural), so the savings concentrate in the many
// expression-only epochs around it.
void PrintIncrementalTable(BenchJson& json) {
  const int kRepeats = BenchSmokeMode() ? 2 : 10;
  TextTable table({"clusters", "baseline: rebuilds", "incremental: rebuilds",
                   "baseline: ms", "incremental: ms", "families retained",
                   "facts nodes refreshed"});
  for (int clusters : ClusterSweep()) {
    const std::string src = ClusterSource(clusters);
    std::uint64_t rebuilds[2] = {0, 0};
    std::uint64_t retained = 0, facts_refreshed = 0;
    double ms[2] = {0, 0};
    for (int mode = 0; mode < 2; ++mode) {
      const bool incremental = mode == 1;
      for (int rep = 0; rep < kRepeats; ++rep) {
        SessionOptions options;
        options.analysis.incremental = incremental;
        Session s(Parse(src), options);
        const auto t0 = std::chrono::steady_clock::now();
        const Applied applied = ApplyChains(s, clusters);
        const UndoStats stats = s.Undo(applied.ctps[0]);
        const auto t1 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(stats.transforms_undone);
        rebuilds[mode] += s.analyses().rebuild_count();
        ms[mode] +=
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (incremental) {
          retained += s.analyses().families_retained();
          facts_refreshed += s.analyses().facts_nodes_refreshed();
        }
      }
      rebuilds[mode] /= kRepeats;
    }
    retained /= kRepeats;
    facts_refreshed /= kRepeats;
    const auto fmt_ms = [kRepeats](double total) {
      std::ostringstream os;
      os.precision(3);
      os << std::fixed << total / kRepeats;
      return os.str();
    };
    table.AddRow({std::to_string(clusters), std::to_string(rebuilds[0]),
                  std::to_string(rebuilds[1]), fmt_ms(ms[0]), fmt_ms(ms[1]),
                  std::to_string(retained), std::to_string(facts_refreshed)});
    json.Row()
        .Str("experiment", "incremental_ab")
        .Int("clusters", static_cast<std::uint64_t>(clusters))
        .Int("baseline_rebuilds", rebuilds[0])
        .Int("incremental_rebuilds", rebuilds[1])
        .Num("baseline_workload_ms", ms[0] / kRepeats)
        .Num("incremental_workload_ms", ms[1] / kRepeats)
        .Int("families_retained", retained)
        .Int("facts_nodes_refreshed", facts_refreshed);
  }
  std::cout << "== incremental invalidation A/B: apply 3K + undo first CTP "
               "(mean of " << kRepeats << " runs) ==\n"
            << table.Render() << '\n';
}

void PrintAblationTable() {
  TextTable table({"heuristic", "regional", "candidates", "in region",
                   "marked (Table 4)", "safety checks", "undone"});
  for (bool conservative : {false, true}) {
    for (bool regional : {true, false}) {
      UndoOptions options;
      options.heuristic = conservative
                              ? UndoOptions::Heuristic::kConservative
                              : UndoOptions::Heuristic::kPublished;
      options.regional = regional;
      Session s(Parse(ClusterSource(16)), options);
      const Applied applied = ApplyChains(s, 16);
      const UndoStats stats = s.Undo(applied.ctps[0]);
      table.AddRow({conservative ? "conservative" : "published (Table 4)",
                    regional ? "on" : "off",
                    std::to_string(stats.candidates_total),
                    std::to_string(stats.candidates_in_region),
                    std::to_string(stats.candidates_marked),
                    std::to_string(stats.safety_checks),
                    std::to_string(stats.transforms_undone)});
    }
  }
  std::cout << "== ablation: reverse-destroy heuristic x regional "
               "analysis (16 clusters) ==\n"
            << table.Render() << '\n';
}

// A/B: the region-indexed undo planner (persistent index + one batched
// UndoSet transaction) against the seed engine (linear history scans,
// one Undo transaction per stamp) reverting the whole chains of the
// *earliest* clusters out of a long history. The seed engine pays, per
// stamp, a full-history linear scan (every later live record gets the
// exact containment predicate) plus an analysis re-derivation window
// the moment a restored statement's deferred safety obligation queries
// liveness/reaching against the just-mutated program. The planner
// inverts the whole set back to back first (no analysis query
// interleaves with the mutations), then adjudicates the scans through
// the index's buckets — one shared analysis window and near-zero
// candidate enumeration instead of one window and one O(history) walk
// per stamp.
// Returns false when the two engines diverge or (outside smoke mode)
// the 200+-record speedup falls below the 3x acceptance floor.
//
// The A/B runs twice, over nested clusters (one loop per cluster) and
// over the flat top-level ClusterSource. The flat rows regression-pin
// the top-level-Delete region fix: restored top-level statements used to
// derive their region from the parent block — at top level the whole
// program, which no index can prune — so the planner degenerated to a
// linear scan exactly on flat programs. Regions of top-level sites are
// now anchored to the touched statement's predecessor/successor
// neighborhood instead, keeping flat undos cluster-local too.
std::string NestedClusterSource(int clusters) {
  std::ostringstream os;
  for (int k = 0; k < clusters; ++k) {
    os << "do i" << k << " = 1, 4\n";
    os << "  c" << k << " = 1\n";
    os << "  x" << k << " = c" << k << " + 2\n";
    os << "  write x" << k << "\n";
    os << "enddo\n";
  }
  return os.str();
}

bool PrintPlannerTable(BenchJson& json, bool flat) {
  const int kRepeats = BenchSmokeMode() ? 1 : 5;
  const std::vector<int> sizes =
      BenchSmokeMode() ? std::vector<int>{8} : std::vector<int>{16, 32, 70};
  bool ok = true;
  TextTable table({"clusters", "records", "targets", "undone",
                   "linear: ms", "planner: ms", "speedup",
                   "candidates (lin/plan)", "rebuilds (lin/plan)",
                   "identical"});
  for (int clusters : sizes) {
    const std::string src =
        flat ? ClusterSource(clusters) : NestedClusterSource(clusters);
    const int num_chains = clusters < 8 ? clusters : 8;
    const int num_targets = 3 * num_chains;
    const auto chain_stamps = [num_chains](const Applied& applied) {
      std::vector<OrderStamp> stamps;
      stamps.reserve(static_cast<std::size_t>(3 * num_chains));
      for (int k = 0; k < num_chains; ++k) {
        stamps.push_back(applied.ctps[k]);
        stamps.push_back(applied.cfos[k]);
        stamps.push_back(applied.dces[k]);
      }
      return stamps;
    };
    double linear_ms = 0, planner_ms = 0;
    int linear_undone = 0, planner_undone = 0;
    UndoStats linear_stats, planner_stats;
    std::string linear_src, planner_src;
    for (int rep = 0; rep < kRepeats; ++rep) {
      {
        // Seed configuration: no index, one Undo transaction per stamp,
        // latest first (the order UndoSet adjudicates in).
        UndoOptions options;
        options.indexed = false;
        Session s(Parse(src), options);
        const Applied applied = ApplyChains(s, clusters);
        std::vector<OrderStamp> stamps = chain_stamps(applied);
        std::sort(stamps.begin(), stamps.end(),
                  [](OrderStamp a, OrderStamp b) { return a > b; });
        const int before = LiveCount(s);
        const auto t0 = std::chrono::steady_clock::now();
        for (const OrderStamp stamp : stamps) {
          if (s.history().FindByStamp(stamp)->undone) continue;
          linear_stats += s.Undo(stamp);
        }
        const auto t1 = std::chrono::steady_clock::now();
        linear_ms +=
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        linear_undone = before - LiveCount(s);
        linear_src = s.Source();
      }
      {
        Session s(Parse(src));  // indexed planner is the default
        const Applied applied = ApplyChains(s, clusters);
        const std::vector<OrderStamp> targets = chain_stamps(applied);
        const int before = LiveCount(s);
        const auto t0 = std::chrono::steady_clock::now();
        planner_stats += s.UndoSet(targets);
        const auto t1 = std::chrono::steady_clock::now();
        planner_ms +=
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        planner_undone = before - LiveCount(s);
        planner_src = s.Source();
      }
    }
    const bool identical =
        linear_src == planner_src && linear_undone == planner_undone;
    ok = ok && identical;
    const double speedup = planner_ms > 0 ? linear_ms / planner_ms : 0;
    if (!BenchSmokeMode() && 3 * clusters >= 200 && speedup < 3.0) {
      std::cerr << "FAIL: planner speedup " << speedup << "x on "
                << 3 * clusters << " records is below the 3x floor\n";
      ok = false;
    }
    const auto fmt = [](double value) {
      std::ostringstream os;
      os.precision(3);
      os << std::fixed << value;
      return os.str();
    };
    table.AddRow({std::to_string(clusters), std::to_string(3 * clusters),
                  std::to_string(num_targets),
                  std::to_string(planner_undone), fmt(linear_ms / kRepeats),
                  fmt(planner_ms / kRepeats), fmt(speedup),
                  std::to_string(linear_stats.candidates_total) + "/" +
                      std::to_string(planner_stats.candidates_total),
                  std::to_string(linear_stats.analysis_rebuilds) + "/" +
                      std::to_string(planner_stats.analysis_rebuilds),
                  identical ? "yes" : "NO"});
    json.Row()
        .Str("experiment", flat ? "planner_ab_flat" : "planner_ab")
        .Int("clusters", static_cast<std::uint64_t>(clusters))
        .Int("records", static_cast<std::uint64_t>(3 * clusters))
        .Int("targets", static_cast<std::uint64_t>(num_targets))
        .Int("undone", static_cast<std::uint64_t>(planner_undone))
        .Num("linear_ms", linear_ms / kRepeats)
        .Num("planner_ms", planner_ms / kRepeats)
        .Num("speedup", speedup)
        .Int("linear_candidates",
             static_cast<std::uint64_t>(linear_stats.candidates_total) /
                 kRepeats)
        .Int("planner_candidates",
             static_cast<std::uint64_t>(planner_stats.candidates_total) /
                 kRepeats)
        .Int("linear_rebuilds", linear_stats.analysis_rebuilds / kRepeats)
        .Int("planner_rebuilds", planner_stats.analysis_rebuilds / kRepeats)
        .Str("identical", identical ? "yes" : "no");
  }
  std::cout << "== planner A/B (" << (flat ? "flat top-level" : "nested")
            << " clusters): revert the 8 earliest chains, indexed batch "
               "vs seed linear (mean of " << kRepeats << " runs) ==\n"
            << table.Render() << '\n';
  return ok;
}

void BM_IndependentUndo(benchmark::State& state) {
  const int clusters = static_cast<int>(state.range(0));
  const std::string src = ClusterSource(clusters);
  for (auto _ : state) {
    state.PauseTiming();
    Session s(Parse(src));
    const Applied applied = ApplyChains(s, clusters);
    state.ResumeTiming();
    benchmark::DoNotOptimize(s.Undo(applied.ctps[0]));
  }
  state.SetLabel("3K=" + std::to_string(3 * clusters));
}
BENCHMARK(BM_IndependentUndo)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Iterations(5)->Unit(benchmark::kMicrosecond);

void BM_ReverseSuffixUndo(benchmark::State& state) {
  const int clusters = static_cast<int>(state.range(0));
  const std::string src = ClusterSource(clusters);
  for (auto _ : state) {
    state.PauseTiming();
    Session s(Parse(src));
    const Applied applied = ApplyChains(s, clusters);
    state.ResumeTiming();
    while (!s.history().FindByStamp(applied.ctps[0])->undone) {
      s.UndoLast();
    }
  }
  state.SetLabel("3K=" + std::to_string(3 * clusters));
}
BENCHMARK(BM_ReverseSuffixUndo)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Iterations(5)->Unit(benchmark::kMicrosecond);

void BM_RedoAllFromScratch(benchmark::State& state) {
  const int clusters = static_cast<int>(state.range(0));
  const std::string src = ClusterSource(clusters);
  for (auto _ : state) {
    // The strawman pays parsing + full re-application.
    Session s(Parse(src));
    for (TransformKind kind :
         {TransformKind::kCtp, TransformKind::kCfo, TransformKind::kDce}) {
      for (int k = 1; k < clusters; ++k) {
        const auto ops = s.FindOpportunities(kind);
        bool applied_one = false;
        for (const auto& op : ops) {
          const std::string what = op.Describe(s.program());
          if (what.find("c0") == std::string::npos &&
              what.find("x0") == std::string::npos) {
            s.Apply(op);
            applied_one = true;
            break;
          }
        }
        if (!applied_one) break;
      }
    }
    benchmark::DoNotOptimize(s.history().records().size());
  }
  state.SetLabel("3K=" + std::to_string(3 * clusters));
}
BENCHMARK(BM_RedoAllFromScratch)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Iterations(5)->Unit(benchmark::kMicrosecond);

// The regional / heuristic ablation as timed benchmarks.
void BM_UndoAblation(benchmark::State& state) {
  const bool conservative = state.range(0) != 0;
  const bool regional = state.range(1) != 0;
  const int clusters = 16;
  const std::string src = ClusterSource(clusters);
  UndoOptions options;
  options.heuristic = conservative ? UndoOptions::Heuristic::kConservative
                                   : UndoOptions::Heuristic::kPublished;
  options.regional = regional;
  for (auto _ : state) {
    state.PauseTiming();
    Session s(Parse(src), options);
    const Applied applied = ApplyChains(s, clusters);
    state.ResumeTiming();
    benchmark::DoNotOptimize(s.Undo(applied.ctps[0]));
  }
  std::ostringstream label;
  label << (conservative ? "conservative" : "published") << "/"
        << (regional ? "regional" : "global");
  state.SetLabel(label.str());
}
BENCHMARK(BM_UndoAblation)
    ->Args({0, 1})->Args({0, 0})->Args({1, 1})->Args({1, 0})
    ->Iterations(5)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pivot

int main(int argc, char** argv) {
  pivot::BenchJson json("fig4_undo_scaling");
  pivot::PrintScalingTable(json);
  pivot::PrintIncrementalTable(json);
  pivot::PrintAblationTable();
  const bool planner_ok = pivot::PrintPlannerTable(json, /*flat=*/false) &&
                          pivot::PrintPlannerTable(json, /*flat=*/true);
  const std::string path = json.WriteFile();
  if (!path.empty()) std::cout << "wrote " << path << '\n';
  if (pivot::BenchSmokeMode()) return planner_ok ? 0 : 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return planner_ok ? 0 : 1;
}
