// Table 3 — "Disabling Conditions of Safety and Reversibility" (DCE row).
//
// Exercises every disabling condition the paper lists for DCE and shows
// that the implementation detects it:
//   safety:        add / modify / move a statement that uses the value
//                  computed by the deleted S_i;
//   reversibility: delete the context of S_i's original location;
//                  copy the context of the location.
// Benchmarks: the cost of the safety-condition check and of the
// reversibility (post-pattern) check as the history grows.
#include <benchmark/benchmark.h>

#include <iostream>

#include "pivot/core/session.h"
#include "pivot/ir/parser.h"
#include "pivot/support/benchjson.h"
#include "pivot/support/table.h"
#include "pivot/transform/catalog.h"
#include "pivot/transform/spec.h"

namespace pivot {
namespace {

// S_i = "x = 1" inside a loop so its context can be deleted/copied.
const char* kDceProbe = R"(
do i = 1, 2
  x = 1
  x = 2
  a(i) = x
enddo
write a(1)
write x
)";

void PrintTable3() {
  TextTable table({"Disabling condition", "Kind", "Detected"});
  const Transformation& dce = GetTransformation(TransformKind::kDce);

  // --- safety-disabling: Add a statement using S_i's value ---
  {
    Session s(Parse(kDceProbe));
    const OrderStamp t = *s.ApplyFirst(TransformKind::kDce);
    Stmt& loop = *s.program().top()[0];
    // A use of x between S_i's slot and the kill.
    s.editor().AddStmt(MakeWrite(MakeVarRef("x")), &loop, BodyKind::kMain,
                       0);
    const bool unsafe = !dce.CheckSafety(s.analyses(), s.journal(),
                                         *s.history().FindByStamp(t));
    table.AddRow({"Add a statement S_l that uses value computed by S_i",
                  "safety", unsafe ? "yes" : "NO"});
  }
  // --- safety-disabling: Modify a statement into using S_i's value ---
  {
    Session s(Parse(kDceProbe));
    const OrderStamp t = *s.ApplyFirst(TransformKind::kDce);
    Stmt& kill = *s.program().top()[0]->body[0];  // x = 2
    s.editor().ReplaceExpr(*kill.rhs, ParseExpr("x + 2"));
    const bool unsafe = !dce.CheckSafety(s.analyses(), s.journal(),
                                         *s.history().FindByStamp(t));
    table.AddRow({"Modify a statement S_l to use value computed by S_i",
                  "safety", unsafe ? "yes" : "NO"});
  }
  // --- safety-disabling: Move a use onto the path S_i reaches ---
  {
    Session s(Parse(kDceProbe));
    const OrderStamp t = *s.ApplyFirst(TransformKind::kDce);
    // Move "write x" (currently after the loop) into the loop before the
    // kill: now on the path from S_i's slot.
    Stmt& loop = *s.program().top()[0];
    Stmt& write_x = *s.program().top()[2];
    s.editor().MoveStmt(write_x, &loop, BodyKind::kMain, 0);
    const bool unsafe = !dce.CheckSafety(s.analyses(), s.journal(),
                                         *s.history().FindByStamp(t));
    table.AddRow({"Move a statement S_l onto the path S_i reaches",
                  "safety", unsafe ? "yes" : "NO"});
  }
  // --- reversibility-disabling: delete the location's context ---
  {
    Session s(Parse(kDceProbe));
    const OrderStamp t = *s.ApplyFirst(TransformKind::kDce);
    s.editor().DeleteStmt(*s.program().top()[0]);  // the loop
    const Reversibility rev = dce.CheckReversibility(
        s.analyses(), s.journal(), *s.history().FindByStamp(t));
    table.AddRow({"Delete context of the location (the enclosing loop)",
                  "reversibility", !rev.ok ? "yes" : "NO"});
  }
  // --- reversibility-disabling: copy the location's context ---
  {
    Session s(Parse(kDceProbe));
    const OrderStamp t = *s.ApplyFirst(TransformKind::kDce);
    // LUR-style duplication through the journal: copy the loop.
    Stmt& loop = *s.program().top()[0];
    Journal& j = s.journal();
    j.Copy(loop, nullptr, BodyKind::kMain, 1, s.history().NextStamp());
    const Reversibility rev = dce.CheckReversibility(
        s.analyses(), s.journal(), *s.history().FindByStamp(t));
    table.AddRow({"Copy context of the location (e.g. by LUR)",
                  "reversibility", !rev.ok ? "yes" : "NO"});
  }

  std::cout << "== Table 3: disabling conditions for DCE ==\n"
            << table.Render() << '\n';
}

// The paper prints only DCE's row and defers the rest to the thesis [6];
// here the reversibility-disabling action sets are *derived mechanically*
// from each transformation's primitive-action specification (the paper's
// §6 generator direction), generalizing Table 3 to all ten rows.
void PrintTable3Generalized() {
  TextTable table({"Transformation", "action skeleton",
                   "reversibility disabled by (derived)"});
  for (int i = 0; i < kNumTransformKinds; ++i) {
    const TransformSpec& spec = SpecOf(TransformKindFromIndex(i));
    std::string skeleton;
    for (std::size_t k = 0; k < spec.steps.size(); ++k) {
      if (k != 0) skeleton += "; ";
      skeleton += ActionKindToString(spec.steps[k].kind);
      if (spec.steps[k].header) skeleton += "(hdr)";
      if (spec.steps[k].arity == ActionStep::Arity::kOneOrMore) {
        skeleton += "+";
      } else if (spec.steps[k].arity == ActionStep::Arity::kZeroOrMore) {
        skeleton += "*";
      }
    }
    std::string disablers;
    for (ActionKind kind : spec.reversibility_disablers) {
      if (!disablers.empty()) disablers += " ";
      disablers += ActionKindShorthand(kind);
    }
    table.AddRow({TransformKindName(spec.transform), skeleton, disablers});
  }
  std::cout << "== Table 3 generalized: spec-derived disabling actions "
               "==\n"
            << table.Render() << '\n';
}

void BM_SafetyCheckDce(benchmark::State& state) {
  Session s(Parse(kDceProbe));
  const OrderStamp t = *s.ApplyFirst(TransformKind::kDce);
  const TransformRecord* rec = s.history().FindByStamp(t);
  const Transformation& dce = GetTransformation(TransformKind::kDce);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dce.CheckSafety(s.analyses(), s.journal(), *rec));
  }
}
BENCHMARK(BM_SafetyCheckDce);

// Post-pattern validation cost as the journal grows: the check walks the
// later history looking for clobbering actions.
void BM_ReversibilityVsHistorySize(benchmark::State& state) {
  const int extra = static_cast<int>(state.range(0));
  Session s(Parse(kDceProbe));
  const OrderStamp t = *s.ApplyFirst(TransformKind::kDce);
  // Pad the history with unrelated edits (adds at the end).
  for (int i = 0; i < extra; ++i) {
    s.editor().AddStmt(MakeWrite(MakeIntConst(i)), nullptr, BodyKind::kMain,
                       s.program().top().size());
  }
  const TransformRecord* rec = s.history().FindByStamp(t);
  const Transformation& dce = GetTransformation(TransformKind::kDce);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dce.CheckReversibility(s.analyses(), s.journal(), *rec));
  }
  state.SetLabel("history+" + std::to_string(extra));
}
BENCHMARK(BM_ReversibilityVsHistorySize)->Arg(0)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace pivot

int main(int argc, char** argv) {
  pivot::PrintTable3();
  pivot::PrintTable3Generalized();
  if (pivot::BenchSmokeMode()) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
