// Figure 3 — "Summary of data dependences on region nodes."
//
// Reproduces the paper's motivating query: can two adjacent loops be
// fused? With LCR summaries, the query inspects only the dependences
// annotated on the loops' common region node (d2 on R1 in the figure)
// instead of visiting every statement pair under both loops. The
// benchmark compares the summary-based query against the full pairwise
// dependence recomputation as the loops grow.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <sstream>

#include "pivot/core/session.h"
#include "pivot/ir/builder.h"
#include "pivot/support/benchjson.h"
#include "pivot/support/table.h"

namespace pivot {
namespace {

// Two adjacent loops with `body` statements each; one flow dependence
// (via array x) crosses between them — the d2 of Figure 3.
Program MakeAdjacentLoops(int body) {
  using namespace dsl;  // NOLINT
  ProgramBuilder b;
  b.Do("i", I(1), I(4));
  for (int k = 0; k < body; ++k) {
    b.Assign(At("u" + std::to_string(k), V("i")), Add(V("i"), I(k)));
  }
  b.Assign(At("x", V("i")), V("i"));  // source of d2
  b.End();
  b.Do("i", I(1), I(4));
  for (int k = 0; k < body; ++k) {
    b.Assign(At("v" + std::to_string(k), V("i")), Mul(V("i"), I(k + 1)));
  }
  b.Assign(At("y", V("i")), At("x", V("i")));  // sink of d2
  b.End();
  b.Write(At("y", I(2)));
  return b.Build();
}

void PrintFigure3() {
  Program p = MakeAdjacentLoops(2);
  AnalysisCache cache(p);
  const Stmt& l1 = *p.top()[0];
  const Stmt& l2 = *p.top()[1];

  std::cout << "== Figure 3 configuration ==\n" << ToSource(p) << '\n';

  const int lcr = cache.pdg().Lcr(*l1.body[0], *l2.body[0]);
  std::cout << "LCR(loop1 body, loop2 body) = node " << lcr
            << " (the root region R1 of the figure)\n";
  std::cout << "dependences summarized on it:\n";
  for (const Dependence* dep : cache.summaries().AtRegion(lcr)) {
    std::cout << "  " << dep->ToString() << '\n';
  }

  std::size_t inspected = 0;
  const auto crossing =
      cache.summaries().Between(l1, l2, /*either_direction=*/false,
                                &inspected);
  std::cout << "fusion query via summaries: inspected " << inspected
            << " summarized dependence(s), found " << crossing.size()
            << " crossing (d2)\n";
  std::cout << "fusion prevented? "
            << (FusionPrevented(p, cache.loops(), l1, l2) ? "yes" : "no")
            << "\n\n";
}

// Edit/re-analyze loop: repeatedly replace one RHS expression inside the
// first loop (a pure expression-level change, the paper's §4.4 after-undo
// situation), then re-query the summary and data-flow layers. The baseline
// cache drops every family on each edit; the incremental cache retains the
// structural families and refreshes block-local facts for the one dirty
// statement.
void PrintIncrementalInvalidation(BenchJson& json) {
  constexpr int kEdits = 50;
  TextTable table({"mode", "family rebuilds", "facts nodes refreshed",
                   "dag blocks reused", "wall ms"});
  for (int mode = 0; mode < 2; ++mode) {
    const bool incremental = mode == 1;
    Program p = MakeAdjacentLoops(32);
    AnalysisOptions opts;
    opts.incremental = incremental;
    AnalysisCache cache(p, opts);
    cache.PrimeAll();
    Stmt& victim = *p.top()[0]->body[0];
    std::vector<ExprPtr> retired;  // replaced subtrees, kept registered

    const std::uint64_t rebuilds_before = cache.rebuild_count();
    const auto t0 = std::chrono::steady_clock::now();
    for (int edit = 0; edit < kEdits; ++edit) {
      using namespace dsl;  // NOLINT
      retired.push_back(p.ReplaceSlotExpr(victim, ExprSlot::kRhs,
                                          Add(V("i"), I(edit))));
      // Re-derive what the fusion query and the data-flow layer need.
      benchmark::DoNotOptimize(cache.summaries().TotalSummarized());
      benchmark::DoNotOptimize(cache.reaching().defs().size());
      benchmark::DoNotOptimize(cache.block_dags().blocks.size());
    }
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t rebuilds = cache.rebuild_count() - rebuilds_before;
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    std::ostringstream ms_str;
    ms_str.precision(3);
    ms_str << std::fixed << ms;
    table.AddRow({incremental ? "incremental" : "baseline",
                  std::to_string(rebuilds),
                  std::to_string(cache.facts_nodes_refreshed()),
                  std::to_string(cache.dag_blocks_reused()), ms_str.str()});
    json.Row()
        .Str("experiment", "incremental_invalidation")
        .Str("mode", incremental ? "incremental" : "baseline")
        .Int("edits", kEdits)
        .Int("family_rebuilds", rebuilds)
        .Int("facts_nodes_refreshed", cache.facts_nodes_refreshed())
        .Int("dag_blocks_reused", cache.dag_blocks_reused())
        .Num("wall_ms", ms);
  }
  std::cout << "== incremental invalidation: " << kEdits
            << " expression edits + re-queries (body=32) ==\n"
            << table.Render() << '\n';
}

// Query cost: summaries (built once, queried often) vs. recomputing the
// pairwise dependences for every query.
void BM_FusionQueryViaSummaries(benchmark::State& state) {
  Program p = MakeAdjacentLoops(static_cast<int>(state.range(0)));
  AnalysisCache cache(p);
  const Stmt& l1 = *p.top()[0];
  const Stmt& l2 = *p.top()[1];
  cache.summaries();  // build once
  std::size_t inspected = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.summaries().Between(l1, l2, false, &inspected));
  }
  state.counters["inspected"] = static_cast<double>(inspected);
  state.SetLabel("body=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_FusionQueryViaSummaries)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_FusionQueryFullScan(benchmark::State& state) {
  Program p = MakeAdjacentLoops(static_cast<int>(state.range(0)));
  AnalysisCache cache(p);
  const Stmt& l1 = *p.top()[0];
  const Stmt& l2 = *p.top()[1];
  for (auto _ : state) {
    // The no-summary baseline: recompute pairwise dependences of the two
    // loop bodies for every query.
    benchmark::DoNotOptimize(
        FusionPrevented(p, cache.loops(), l1, l2));
  }
  state.SetLabel("body=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_FusionQueryFullScan)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_SummaryConstruction(benchmark::State& state) {
  Program p = MakeAdjacentLoops(static_cast<int>(state.range(0)));
  AnalysisCache cache(p);
  const Pdg& pdg = cache.pdg();
  for (auto _ : state) {
    DependenceSummaries summaries(pdg);
    benchmark::DoNotOptimize(summaries.TotalSummarized());
  }
  state.SetLabel("body=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_SummaryConstruction)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace pivot

int main(int argc, char** argv) {
  pivot::PrintFigure3();
  pivot::BenchJson json("fig3_regional");
  pivot::PrintIncrementalInvalidation(json);
  const std::string path = json.WriteFile();
  if (!path.empty()) std::cout << "wrote " << path << '\n';
  if (pivot::BenchSmokeMode()) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
