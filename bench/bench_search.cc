// Search workload benchmark: undo as the backtracking path of a
// STOKE-style auto-parallelizer (DESIGN.md §14).
//
// Three experiments, all over seeded random programs:
//
//   * trajectory  — greedy vs anneal cost trajectories: proposals/sec,
//                   accept rate, parallel loops exposed, apply:undo ratio.
//   * reject A/B  — the same deterministic anneal run against a session
//                   with the region index on (default) vs off (seed
//                   linear scans). The searcher rejects most proposals,
//                   so the reject path *is* the workload; outside smoke
//                   mode the run fails unless indexed rejects stay >= 3x
//                   cheaper per reject than linear ones.
//   * soak        — many seeded programs, 100k proposals total (smoke: a
//                   token sweep), each run checked against the
//                   accepted-prefix oracle (structural + semantic
//                   equivalence to replaying only the surviving accepted
//                   steps). Any deviation fails the binary.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "pivot/core/session.h"
#include "pivot/ir/parser.h"
#include "pivot/ir/printer.h"
#include "pivot/ir/random_program.h"
#include "pivot/search/searcher.h"
#include "pivot/support/benchjson.h"
#include "pivot/support/table.h"

namespace pivot {
namespace {

// `name_pools` widens the scalar/array name universe. The region index
// prunes candidates through per-name buckets, so a program written with
// six scalars total degenerates every bucket to ~the whole history and
// the index decays to a (slower) linear scan. The default pools stay
// small for the trajectory/soak experiments (harder programs for the
// searcher); the reject A/B uses diverse names — the regime the index
// exists for, and the honest analogue of real code.
std::string SearchProgram(std::uint64_t seed, int target_stmts,
                          int name_pools = 0) {
  RandomProgramOptions gen;
  gen.seed = seed;
  gen.target_stmts = target_stmts;
  if (name_pools > 0) {
    gen.num_scalars = name_pools;
    gen.num_arrays = name_pools / 3;
  }
  return ToSource(GenerateRandomProgram(gen));
}

struct TimedRun {
  SearchResult result;
  double wall_ms = 0;
};

TimedRun RunSearch(Session& session, const SearchOptions& options) {
  TimedRun run;
  Searcher searcher(session, options);
  const auto t0 = std::chrono::steady_clock::now();
  run.result = searcher.Run();
  const auto t1 = std::chrono::steady_clock::now();
  run.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return run;
}

double PerRejectNs(const SearchStats& st) {
  return st.rejected > 0
             ? static_cast<double>(st.undo_ns) / static_cast<double>(st.rejected)
             : 0.0;
}

std::string Fmt(double value, int precision = 2) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << value;
  return os.str();
}

// --- greedy vs anneal trajectories ----------------------------------------

void PrintTrajectoryTable(BenchJson& json) {
  const int budget = BenchSmokeMode() ? 150 : 2000;
  const int stmts = BenchSmokeMode() ? 40 : 80;
  TextTable table({"seed", "mode", "proposals", "accepted", "score0",
                   "score", "par0", "par", "proposals/s", "apply:undo"});
  for (std::uint64_t seed : {7u, 21u}) {
    const std::string src = SearchProgram(seed, stmts);
    for (SearchMode mode : {SearchMode::kGreedy, SearchMode::kAnneal}) {
      SearchOptions options;
      options.mode = mode;
      options.budget = budget;
      options.seed = seed;
      Session session(Parse(src));
      const TimedRun run = RunSearch(session, options);
      const SearchStats& st = run.result.stats;
      const double per_sec =
          run.wall_ms > 0 ? 1000.0 * static_cast<double>(st.proposals) /
                                run.wall_ms
                          : 0;
      const double ratio =
          st.undo_ns > 0 ? static_cast<double>(st.apply_ns) /
                               static_cast<double>(st.undo_ns)
                         : 0;
      table.AddRow(
          {std::to_string(seed), SearchModeName(mode),
           std::to_string(st.proposals), std::to_string(st.accepted),
           Fmt(run.result.initial_cost.score, 1),
           Fmt(run.result.final_cost.score, 1),
           std::to_string(run.result.initial_cost.parallel_loops) + "/" +
               std::to_string(run.result.initial_cost.total_loops),
           std::to_string(run.result.final_cost.parallel_loops) + "/" +
               std::to_string(run.result.final_cost.total_loops),
           Fmt(per_sec, 0), Fmt(ratio)});
      json.Row()
          .Str("experiment", "trajectory")
          .Int("seed", seed)
          .Str("mode", SearchModeName(mode))
          .Int("proposals", st.proposals)
          .Int("accepted", st.accepted)
          .Int("rejected", st.rejected)
          .Num("initial_score", run.result.initial_cost.score)
          .Num("final_score", run.result.final_cost.score)
          .Int("initial_parallel",
               static_cast<std::uint64_t>(
                   run.result.initial_cost.parallel_loops))
          .Int("final_parallel",
               static_cast<std::uint64_t>(run.result.final_cost.parallel_loops))
          .Num("proposals_per_sec", per_sec)
          .Num("apply_undo_ratio", ratio);
    }
  }
  std::cout << "== search trajectories: greedy vs anneal (budget "
            << budget << ") ==\n"
            << table.Render() << '\n';
}

// --- reject-path A/B: region index on vs off ------------------------------

// Both sessions see the identical proposal sequence (same seed, and undo
// semantics do not depend on the planner), so per-reject undo cost is
// directly comparable. Returns false when the runs diverge or the indexed
// reject path loses its >= 3x edge (full mode only). A reject undoes the
// newest record, so the optimized planner resolves it as LIFO rollback —
// O(inverse actions) — while the paper-verbatim baseline pays the
// full-history affected scan, the restored-site safety checks, and their
// analysis windows on every reject; the gap is the price of using undo
// as a backtracking primitive at all.
bool PrintRejectAb(BenchJson& json) {
  const int budget = BenchSmokeMode() ? 100 : 3000;
  const int stmts = BenchSmokeMode() ? 60 : 150;
  bool ok = true;
  TextTable table({"seed", "rejects", "history", "linear: us/reject",
                   "indexed: us/reject", "speedup", "identical"});
  for (std::uint64_t seed : {7u, 21u}) {
    SearchOptions options;
    options.mode = SearchMode::kAnneal;
    options.budget = budget;
    options.seed = seed;
    const std::string src = SearchProgram(seed, stmts, /*name_pools=*/48);

    UndoOptions linear;
    linear.indexed = false;
    Session linear_session(Parse(src), linear);
    const TimedRun linear_run = RunSearch(linear_session, options);

    Session indexed_session(Parse(src));  // indexed planner is the default
    const TimedRun indexed_run = RunSearch(indexed_session, options);

    const bool identical =
        linear_session.Source() == indexed_session.Source() &&
        linear_run.result.steps.size() == indexed_run.result.steps.size();
    ok = ok && identical;
    const double linear_ns = PerRejectNs(linear_run.result.stats);
    const double indexed_ns = PerRejectNs(indexed_run.result.stats);
    const double speedup = indexed_ns > 0 ? linear_ns / indexed_ns : 0;
    if (!BenchSmokeMode() && speedup < 3.0) {
      std::cerr << "FAIL: indexed reject path speedup " << speedup
                << "x on seed " << seed << " is below the 3x floor\n";
      ok = false;
    }
    const std::size_t history = indexed_session.history().records().size();
    table.AddRow({std::to_string(seed),
                  std::to_string(indexed_run.result.stats.rejected),
                  std::to_string(history), Fmt(linear_ns / 1000.0),
                  Fmt(indexed_ns / 1000.0), Fmt(speedup),
                  identical ? "yes" : "NO"});
    json.Row()
        .Str("experiment", "reject_ab")
        .Int("seed", seed)
        .Int("rejects", indexed_run.result.stats.rejected)
        .Int("history_records", static_cast<std::uint64_t>(history))
        .Num("linear_ns_per_reject", linear_ns)
        .Num("indexed_ns_per_reject", indexed_ns)
        .Num("speedup", speedup)
        .Str("identical", identical ? "yes" : "no");
  }
  std::cout << "== reject-path A/B: anneal with region index off vs on "
               "(budget " << budget << ") ==\n"
            << table.Render() << '\n';
  return ok;
}

// --- oracle soak ----------------------------------------------------------

// Accumulates proposals across seeded programs until the target is hit;
// every program's run must pass the accepted-prefix oracle. The full run
// is the acceptance soak: 100k proposals, zero deviations.
bool PrintSoakTable(BenchJson& json) {
  const std::uint64_t target = BenchSmokeMode() ? 200 : 100'000;
  const int per_program_budget = BenchSmokeMode() ? 100 : 5000;
  const int stmts = BenchSmokeMode() ? 40 : 60;
  std::uint64_t proposals = 0, accepted = 0, rejected = 0, cascaded = 0;
  int programs = 0, deviations = 0;
  double wall_ms = 0;
  std::uint64_t seed = 1;
  while (proposals < target) {
    const std::string src = SearchProgram(seed, stmts);
    SearchOptions options;
    options.mode = SearchMode::kAnneal;
    options.budget = per_program_budget;
    options.seed = seed;
    Session session(Parse(src));
    const Program original = session.program().Clone();
    const TimedRun run = RunSearch(session, options);
    const std::string deviation =
        VerifyAcceptedPrefix(original, run.result.steps, session);
    if (!deviation.empty()) {
      ++deviations;
      std::cerr << "SOAK DEVIATION (seed " << seed << "):\n"
                << deviation << "\n";
    }
    proposals += run.result.stats.proposals;
    accepted += run.result.stats.accepted;
    rejected += run.result.stats.rejected;
    cascaded += run.result.stats.cascaded_records;
    wall_ms += run.wall_ms;
    ++programs;
    ++seed;
  }
  std::cout << "== oracle soak: " << proposals << " proposals over "
            << programs << " programs ==\n"
            << "accepted=" << accepted << " rejected=" << rejected
            << " cascaded=" << cascaded << " deviations=" << deviations
            << " wall=" << Fmt(wall_ms / 1000.0) << "s\n\n";
  json.Row()
      .Str("experiment", "soak")
      .Int("proposals", proposals)
      .Int("programs", static_cast<std::uint64_t>(programs))
      .Int("accepted", accepted)
      .Int("rejected", rejected)
      .Int("cascaded", cascaded)
      .Int("deviations", static_cast<std::uint64_t>(deviations))
      .Num("wall_ms", wall_ms);
  if (deviations != 0) {
    std::cerr << "FAIL: " << deviations
              << " oracle deviations in the search soak\n";
    return false;
  }
  return true;
}

// Timed proposal loop for google-benchmark runs (full mode only).
void BM_ProposalLoop(benchmark::State& state) {
  const std::string src = SearchProgram(7, 60);
  SearchOptions options;
  options.mode = state.range(0) != 0 ? SearchMode::kAnneal
                                     : SearchMode::kGreedy;
  options.budget = 500;
  for (auto _ : state) {
    Session session(Parse(src));
    Searcher searcher(session, options);
    benchmark::DoNotOptimize(searcher.Run().stats.proposals);
  }
  state.SetLabel(SearchModeName(options.mode));
}
BENCHMARK(BM_ProposalLoop)->Arg(0)->Arg(1)
    ->Iterations(3)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pivot

int main(int argc, char** argv) {
  pivot::BenchJson json("search");
  pivot::PrintTrajectoryTable(json);
  const bool ab_ok = pivot::PrintRejectAb(json);
  const bool soak_ok = pivot::PrintSoakTable(json);
  const std::string path = json.WriteFile();
  if (!path.empty()) std::cout << "wrote " << path << '\n';
  if (pivot::BenchSmokeMode()) return ab_ok && soak_ok ? 0 : 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return ab_ok && soak_ok ? 0 : 1;
}
