// Table 4 — "Perform-create (reverse-destroy) interactions."
//
// Prints the published matrix and the matrix re-derived empirically by
// applying each row transformation on randomized probe programs and
// diffing the column transformation's opportunity sets. The published
// entries for the five rows the paper lists should re-appear in (or be a
// subset of) the empirical derivation on sufficiently rich probes.
// Benchmarks: derivation cost vs. trials, and the O(1) Enables lookup.
#include <benchmark/benchmark.h>

#include <iostream>

#include "pivot/core/interactions.h"
#include "pivot/support/benchjson.h"
#include "pivot/support/table.h"

namespace pivot {
namespace {

void PrintMatrices() {
  std::cout << "== Table 4 (published; unlisted rows conservative) ==\n"
            << InteractionTable::Published().Render("perform-create = "
                                                    "reverse-destroy")
            << '\n';

  EmpiricalDeriveOptions opts;
  opts.trials = 8;
  const InteractionTable empirical = DeriveEmpirically(opts);
  std::cout << "== Table 4 re-derived empirically (" << opts.trials
            << " probe programs per row) ==\n"
            << empirical.Render("apply row, diff column opportunities")
            << '\n';

  // Compare the five published rows against the empirical ones.
  TextTable diff({"row", "col", "published", "empirical"});
  const InteractionTable published = InteractionTable::Published();
  int disagreements = 0;
  for (TransformKind row :
       {TransformKind::kDce, TransformKind::kCse, TransformKind::kCtp,
        TransformKind::kIcm, TransformKind::kInx}) {
    for (int col = 0; col < kNumTransformKinds; ++col) {
      const TransformKind c = TransformKindFromIndex(col);
      const bool pub = published.Enables(row, c);
      const bool emp = empirical.Enables(row, c);
      if (pub != emp) {
        ++disagreements;
        diff.AddRow({TransformKindName(row), TransformKindName(c),
                     pub ? "x" : "-", emp ? "x" : "-"});
      }
    }
  }
  std::cout << "published-vs-empirical disagreements (published rows): "
            << disagreements << "\n";
  if (disagreements != 0) std::cout << diff.Render();
  std::cout << '\n';

  // Directed probes: the hand-constructed witnesses for the published
  // entries (random probes rarely contain the enabling configuration).
  TextTable directed({"row", "col", "reproduced by directed probe"});
  int reproduced = 0;
  const auto results = RunDirectedProbes();
  for (const DirectedProbeResult& r : results) {
    directed.AddRow({TransformKindName(r.row), TransformKindName(r.col),
                     r.reproduced ? "yes" : "NO"});
    if (r.reproduced) ++reproduced;
  }
  std::cout << "== Table 4 directed-probe witnesses ==\n"
            << directed.Render() << reproduced << "/" << results.size()
            << " interactions reproduced\n\n";
}

void BM_DeriveEmpirically(benchmark::State& state) {
  EmpiricalDeriveOptions opts;
  opts.trials = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeriveEmpirically(opts));
  }
  state.SetLabel("trials=" + std::to_string(opts.trials));
}
BENCHMARK(BM_DeriveEmpirically)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_EnablesLookup(benchmark::State& state) {
  const InteractionTable table = InteractionTable::Published();
  int i = 0;
  for (auto _ : state) {
    const TransformKind row = TransformKindFromIndex(i % kNumTransformKinds);
    const TransformKind col =
        TransformKindFromIndex((i / kNumTransformKinds) % kNumTransformKinds);
    benchmark::DoNotOptimize(table.Enables(row, col));
    ++i;
  }
}
BENCHMARK(BM_EnablesLookup);

}  // namespace
}  // namespace pivot

int main(int argc, char** argv) {
  pivot::PrintMatrices();
  if (pivot::BenchSmokeMode()) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
