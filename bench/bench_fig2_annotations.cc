// Figure 2 — "Annotations based on primitive actions."
//
// Shows the md/mv/del/add/cp annotation shorthand on touched nodes and
// measures the space/time overhead of maintaining the annotation map as
// the number of applied transformations grows — the cost of keeping the
// representation "augmented" (APDG/ADAG).
#include <benchmark/benchmark.h>

#include <iostream>

#include "pivot/core/session.h"
#include "pivot/ir/parser.h"
#include "pivot/ir/random_program.h"
#include "pivot/support/benchjson.h"
#include "pivot/support/table.h"
#include "pivot/transform/catalog.h"

namespace pivot {
namespace {

void PrintAnnotationShorthand() {
  Session s(Parse("c = 1\nx = c + 2\nx2 = x\ndead = 0\ndead = 1\n"
                  "do i = 1, 4\n  a(i) = a(i) + x\nenddo\n"
                  "write x2\nwrite dead\nwrite a(2)\nwrite c"));
  TextTable table({"t", "transformation", "annotations after applying"});
  for (TransformKind kind :
       {TransformKind::kCtp, TransformKind::kCfo, TransformKind::kCpp,
        TransformKind::kDce, TransformKind::kLur}) {
    const auto stamp = s.ApplyFirst(kind);
    if (!stamp) continue;
    table.AddRow({"t" + std::to_string(*stamp), TransformKindName(kind),
                  std::to_string(s.journal().annotations().TotalCount()) +
                      " annotation(s) live"});
  }
  std::cout << "== Figure 2: annotation growth per transformation ==\n"
            << table.Render() << '\n';
  std::cout << "== full annotation map ==\n"
            << s.AnnotationsToString() << '\n';
}

// Applies as many transformations as the budget allows on a random
// program, measuring annotation count and apply throughput.
void BM_AnnotationGrowth(benchmark::State& state) {
  const int budget = static_cast<int>(state.range(0));
  std::size_t annotations = 0;
  std::size_t applied = 0;
  for (auto _ : state) {
    state.PauseTiming();
    RandomProgramOptions gen;
    gen.seed = 99;
    gen.target_stmts = 60;
    Session s(GenerateRandomProgram(gen));
    state.ResumeTiming();
    int done = 0;
    for (int round = 0; round < budget && done < budget; ++round) {
      for (TransformKind kind : AllTransformKinds()) {
        if (done >= budget) break;
        if (s.ApplyFirst(kind).has_value()) ++done;
      }
    }
    annotations = s.journal().annotations().TotalCount();
    applied += static_cast<std::size_t>(done);
  }
  state.counters["annotations"] = static_cast<double>(annotations);
  state.counters["applied_per_iter"] =
      static_cast<double>(applied) / static_cast<double>(state.iterations());
  state.SetLabel("budget=" + std::to_string(budget));
}
BENCHMARK(BM_AnnotationGrowth)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_AnnotationLookup(benchmark::State& state) {
  Session s(Parse("c = 1\nx = c + 2\nwrite x\nwrite c"));
  s.ApplyFirst(TransformKind::kCtp);
  s.ApplyFirst(TransformKind::kCfo);
  const Expr* folded = s.program().top()[1]->rhs.get();
  const AnnotationMap& annos = s.journal().annotations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(annos.TopOfExpr(folded->id));
  }
}
BENCHMARK(BM_AnnotationLookup);

void BM_AnnotationRender(benchmark::State& state) {
  RandomProgramOptions gen;
  gen.seed = 5;
  gen.target_stmts = 50;
  Session s(GenerateRandomProgram(gen));
  for (TransformKind kind : AllTransformKinds()) s.ApplyFirst(kind);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.AnnotationsToString());
  }
}
BENCHMARK(BM_AnnotationRender);

}  // namespace
}  // namespace pivot

int main(int argc, char** argv) {
  pivot::PrintAnnotationShorthand();
  if (pivot::BenchSmokeMode()) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
