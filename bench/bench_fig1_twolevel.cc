// Figure 1 — "A two-level program representation."
//
// Rebuilds the paper's running example, applies CSE, CTP, INX and ICM in
// the §5.2 order, and dumps the two-level representation: the augmented
// PDG (high level, with region nodes and the action annotations) and the
// per-block augmented DAGs (low level). Benchmarks: construction cost of
// each representation level as the program grows.
#include <benchmark/benchmark.h>

#include <iostream>

#include "pivot/analysis/dag.h"
#include "pivot/core/session.h"
#include "pivot/ir/parser.h"
#include "pivot/ir/random_program.h"
#include "pivot/support/benchjson.h"

namespace pivot {
namespace {

const char* kFigure1 = R"(
1: d = e + f
2: c = 1
3: do i = 1, 100
4:   do j = 1, 50
5:     a(j) = b(j) + c
6:     r(i, j) = e + f
     enddo
   enddo
)";

void PrintFigure1() {
  Session s(Parse(kFigure1));
  std::cout << "== Figure 1: source ==\n" << s.Source() << '\n';

  s.ApplyFirst(TransformKind::kCse);
  s.ApplyFirst(TransformKind::kCtp);
  s.ApplyFirst(TransformKind::kInx);
  s.ApplyFirst(TransformKind::kIcm);

  std::cout << "== after cse(1) ctp(2) inx(3) icm(4) ==\n" << s.Source()
            << '\n';
  std::cout << "== APDG (high level, region nodes + data dependences) ==\n"
            << s.analyses().pdg().ToString() << '\n';
  std::cout << "== annotations based on primitive actions (Figure 2 "
               "shorthand) ==\n"
            << s.AnnotationsToString() << '\n';

  std::cout << "== ADAG (low level: value-numbering DAG per basic block) "
               "==\n";
  const auto blocks = CollectBasicBlocks(s.program());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    std::cout << "block " << b << ":\n" << BlockDag(blocks[b]).ToString();
  }
  std::cout << '\n';
}

void BM_BuildPdg(benchmark::State& state) {
  RandomProgramOptions gen;
  gen.seed = 7;
  gen.target_stmts = static_cast<int>(state.range(0));
  Program p = GenerateRandomProgram(gen);
  AnalysisCache cache(p);
  for (auto _ : state) {
    Pdg pdg(p, ComputeDependences(p, cache.loops()));
    benchmark::DoNotOptimize(pdg.root());
  }
  state.SetLabel("stmts~" + std::to_string(gen.target_stmts));
}
BENCHMARK(BM_BuildPdg)->Arg(30)->Arg(100)->Arg(300);

void BM_BuildBlockDags(benchmark::State& state) {
  RandomProgramOptions gen;
  gen.seed = 7;
  gen.target_stmts = static_cast<int>(state.range(0));
  Program p = GenerateRandomProgram(gen);
  for (auto _ : state) {
    std::size_t nodes = 0;
    for (const BasicBlock& block : CollectBasicBlocks(p)) {
      nodes += BlockDag(block).nodes().size();
    }
    benchmark::DoNotOptimize(nodes);
  }
  state.SetLabel("stmts~" + std::to_string(gen.target_stmts));
}
BENCHMARK(BM_BuildBlockDags)->Arg(30)->Arg(100)->Arg(300);

void BM_ApplyFigure1Sequence(benchmark::State& state) {
  for (auto _ : state) {
    Session s(Parse(kFigure1));
    s.ApplyFirst(TransformKind::kCse);
    s.ApplyFirst(TransformKind::kCtp);
    s.ApplyFirst(TransformKind::kInx);
    s.ApplyFirst(TransformKind::kIcm);
    benchmark::DoNotOptimize(s.history().records().size());
  }
}
BENCHMARK(BM_ApplyFigure1Sequence)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pivot

int main(int argc, char** argv) {
  pivot::PrintFigure1();
  if (pivot::BenchSmokeMode()) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
