// Transactional-session recovery study (failure model, DESIGN.md §7).
//
// The paper assumes the history machinery never desynchronizes from the
// program; the transaction layer makes that hold under mid-operation
// failure. Measured here:
//   * the per-operation overhead of running Apply/Undo inside a
//     transaction guard (event observation + commit bookkeeping),
//     with and without strict-mode validation;
//   * the cost of a rollback, i.e. absorbing an injected fault, as a
//     function of how deep into the operation the fault lands;
//   * a printed recovery report for an exhaustive fault walk over a
//     random workload (every crossing faulted once — the same oracle the
//     fault-injection test suite asserts on).
#include <benchmark/benchmark.h>

#include <iostream>

#include "pivot/core/session.h"
#include "pivot/ir/printer.h"
#include "pivot/ir/random_program.h"
#include "pivot/support/benchjson.h"
#include "pivot/support/fault_injector.h"
#include "pivot/support/rng.h"
#include "pivot/transform/catalog.h"

namespace pivot {
namespace {

Program MakeWorkloadProgram(std::uint64_t seed) {
  RandomProgramOptions gen;
  gen.seed = seed;
  gen.target_stmts = 30;
  return GenerateRandomProgram(gen);
}

// One full apply-everything / undo-everything round, the common kernel.
void RunRound(Session& s) {
  for (int i = 0; i < kNumTransformKinds; ++i) {
    s.ApplyEverywhere(TransformKindFromIndex(i), 3);
  }
  while (s.UndoLast() != kNoStamp) {
  }
}

void BM_TransactionalRound(benchmark::State& state) {
  FaultInjector::Instance().Reset();
  SessionOptions options;
  options.strict = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    Session s(MakeWorkloadProgram(1234), options);
    state.ResumeTiming();
    RunRound(s);
    benchmark::DoNotOptimize(s.recovery().commits);
  }
}
BENCHMARK(BM_TransactionalRound)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("strict");

// Rollback cost: arm a fault at the Nth crossing of one apply-everything
// sweep; deeper crossings mean more observed events to replay backwards.
void BM_RollbackAtCrossing(benchmark::State& state) {
  const int crossing = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    FaultInjector::Instance().Reset();
    Session s(MakeWorkloadProgram(5678));
    state.ResumeTiming();
    FaultInjector::Instance().ArmNthCrossing(crossing);
    for (int i = 0; i < kNumTransformKinds; ++i) {
      try {
        s.ApplyEverywhere(TransformKindFromIndex(i), 3);
      } catch (const FaultInjectedError&) {
        break;  // absorbed: the faulted apply was rolled back
      }
    }
    FaultInjector::Instance().Disarm();
    benchmark::DoNotOptimize(s.recovery().rollbacks);
  }
  FaultInjector::Instance().Reset();
}
BENCHMARK(BM_RollbackAtCrossing)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->ArgName("crossing");

// The printed artifact: walk every crossing of a workload, fault each one
// once, and report what the recovery layer absorbed.
void PrintRecoveryReport() {
  FaultInjector::Instance().Reset();
  SessionOptions options;
  options.strict = true;
  Session s(MakeWorkloadProgram(4242), options);
  const std::string original = ToSource(s.program());

  for (int i = 0; i < kNumTransformKinds; ++i) {
    const TransformKind kind = TransformKindFromIndex(i);
    for (int crossing = 1; crossing < 5000; ++crossing) {
      FaultInjector::Instance().ArmNthCrossing(crossing);
      try {
        if (s.ApplyEverywhere(kind, 2) >= 0) {
          FaultInjector::Instance().Disarm();
          break;
        }
      } catch (const FaultInjectedError&) {
        // absorbed; retry one crossing deeper
      }
    }
  }
  UndoStats stats;
  while (true) {
    TransformRecord* last = s.history().LastLive();
    if (last == nullptr) break;
    for (int crossing = 1; crossing < 5000; ++crossing) {
      FaultInjector::Instance().ArmNthCrossing(crossing);
      try {
        stats += s.Undo(last->stamp);
        FaultInjector::Instance().Disarm();
        break;
      } catch (const FaultInjectedError&) {
      }
    }
  }
  FaultInjector::Instance().Reset();

  std::cout << "== Recovery report: exhaustive fault walk ==\n"
            << s.recovery().ToString()
            << "undo fault crossings: " << stats.fault_crossings << '\n'
            << "full unwind restored original text: "
            << (ToSource(s.program()) == original ? "yes" : "NO") << "\n\n";
}

}  // namespace
}  // namespace pivot

int main(int argc, char** argv) {
  pivot::PrintRecoveryReport();
  if (pivot::BenchSmokeMode()) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
