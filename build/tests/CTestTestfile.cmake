# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/ir_tests[1]_include.cmake")
include("/root/repo/build/tests/analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/actions_tests[1]_include.cmake")
include("/root/repo/build/tests/transform_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/property_tests[1]_include.cmake")
