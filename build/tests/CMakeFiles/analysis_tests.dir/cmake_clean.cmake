file(REMOVE_RECURSE
  "CMakeFiles/analysis_tests.dir/cfg_dataflow_test.cc.o"
  "CMakeFiles/analysis_tests.dir/cfg_dataflow_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/loops_depend_test.cc.o"
  "CMakeFiles/analysis_tests.dir/loops_depend_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/pdg_dag_test.cc.o"
  "CMakeFiles/analysis_tests.dir/pdg_dag_test.cc.o.d"
  "analysis_tests"
  "analysis_tests.pdb"
  "analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
