file(REMOVE_RECURSE
  "CMakeFiles/transform_tests.dir/spec_test.cc.o"
  "CMakeFiles/transform_tests.dir/spec_test.cc.o.d"
  "CMakeFiles/transform_tests.dir/transform_loop_test.cc.o"
  "CMakeFiles/transform_tests.dir/transform_loop_test.cc.o.d"
  "CMakeFiles/transform_tests.dir/transform_scalar_test.cc.o"
  "CMakeFiles/transform_tests.dir/transform_scalar_test.cc.o.d"
  "transform_tests"
  "transform_tests.pdb"
  "transform_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
