# Empty dependencies file for transform_tests.
# This may be replaced when dependencies are built.
