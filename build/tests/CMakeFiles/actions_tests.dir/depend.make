# Empty dependencies file for actions_tests.
# This may be replaced when dependencies are built.
