file(REMOVE_RECURSE
  "CMakeFiles/actions_tests.dir/actions_test.cc.o"
  "CMakeFiles/actions_tests.dir/actions_test.cc.o.d"
  "CMakeFiles/actions_tests.dir/journal_edge_test.cc.o"
  "CMakeFiles/actions_tests.dir/journal_edge_test.cc.o.d"
  "actions_tests"
  "actions_tests.pdb"
  "actions_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actions_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
