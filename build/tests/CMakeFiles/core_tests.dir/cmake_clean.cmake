file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/edits_test.cc.o"
  "CMakeFiles/core_tests.dir/edits_test.cc.o.d"
  "CMakeFiles/core_tests.dir/integration_test.cc.o"
  "CMakeFiles/core_tests.dir/integration_test.cc.o.d"
  "CMakeFiles/core_tests.dir/report_test.cc.o"
  "CMakeFiles/core_tests.dir/report_test.cc.o.d"
  "CMakeFiles/core_tests.dir/scenario_test.cc.o"
  "CMakeFiles/core_tests.dir/scenario_test.cc.o.d"
  "CMakeFiles/core_tests.dir/session_test.cc.o"
  "CMakeFiles/core_tests.dir/session_test.cc.o.d"
  "CMakeFiles/core_tests.dir/trace_test.cc.o"
  "CMakeFiles/core_tests.dir/trace_test.cc.o.d"
  "CMakeFiles/core_tests.dir/undo_test.cc.o"
  "CMakeFiles/core_tests.dir/undo_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
