
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/edits_test.cc" "tests/CMakeFiles/core_tests.dir/edits_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/edits_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/core_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/report_test.cc" "tests/CMakeFiles/core_tests.dir/report_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/report_test.cc.o.d"
  "/root/repo/tests/scenario_test.cc" "tests/CMakeFiles/core_tests.dir/scenario_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/scenario_test.cc.o.d"
  "/root/repo/tests/session_test.cc" "tests/CMakeFiles/core_tests.dir/session_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/session_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/core_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/undo_test.cc" "tests/CMakeFiles/core_tests.dir/undo_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/undo_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pivot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pivot_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pivot_actions.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pivot_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pivot_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pivot_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
