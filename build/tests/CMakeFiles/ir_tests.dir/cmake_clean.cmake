file(REMOVE_RECURSE
  "CMakeFiles/ir_tests.dir/diff_test.cc.o"
  "CMakeFiles/ir_tests.dir/diff_test.cc.o.d"
  "CMakeFiles/ir_tests.dir/interp_test.cc.o"
  "CMakeFiles/ir_tests.dir/interp_test.cc.o.d"
  "CMakeFiles/ir_tests.dir/ir_test.cc.o"
  "CMakeFiles/ir_tests.dir/ir_test.cc.o.d"
  "CMakeFiles/ir_tests.dir/parser_test.cc.o"
  "CMakeFiles/ir_tests.dir/parser_test.cc.o.d"
  "ir_tests"
  "ir_tests.pdb"
  "ir_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
