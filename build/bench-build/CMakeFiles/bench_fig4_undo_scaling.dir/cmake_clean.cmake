file(REMOVE_RECURSE
  "../bench/bench_fig4_undo_scaling"
  "../bench/bench_fig4_undo_scaling.pdb"
  "CMakeFiles/bench_fig4_undo_scaling.dir/bench_fig4_undo_scaling.cc.o"
  "CMakeFiles/bench_fig4_undo_scaling.dir/bench_fig4_undo_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_undo_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
