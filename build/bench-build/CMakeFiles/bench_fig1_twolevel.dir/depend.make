# Empty dependencies file for bench_fig1_twolevel.
# This may be replaced when dependencies are built.
