file(REMOVE_RECURSE
  "../bench/bench_fig1_twolevel"
  "../bench/bench_fig1_twolevel.pdb"
  "CMakeFiles/bench_fig1_twolevel.dir/bench_fig1_twolevel.cc.o"
  "CMakeFiles/bench_fig1_twolevel.dir/bench_fig1_twolevel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_twolevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
