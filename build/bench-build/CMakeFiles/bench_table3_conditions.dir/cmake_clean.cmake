file(REMOVE_RECURSE
  "../bench/bench_table3_conditions"
  "../bench/bench_table3_conditions.pdb"
  "CMakeFiles/bench_table3_conditions.dir/bench_table3_conditions.cc.o"
  "CMakeFiles/bench_table3_conditions.dir/bench_table3_conditions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
