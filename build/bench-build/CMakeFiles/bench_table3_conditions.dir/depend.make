# Empty dependencies file for bench_table3_conditions.
# This may be replaced when dependencies are built.
