# Empty dependencies file for bench_table2_patterns.
# This may be replaced when dependencies are built.
