file(REMOVE_RECURSE
  "../bench/bench_table2_patterns"
  "../bench/bench_table2_patterns.pdb"
  "CMakeFiles/bench_table2_patterns.dir/bench_table2_patterns.cc.o"
  "CMakeFiles/bench_table2_patterns.dir/bench_table2_patterns.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
