# Empty compiler generated dependencies file for bench_table4_interactions.
# This may be replaced when dependencies are built.
