file(REMOVE_RECURSE
  "../bench/bench_table4_interactions"
  "../bench/bench_table4_interactions.pdb"
  "CMakeFiles/bench_table4_interactions.dir/bench_table4_interactions.cc.o"
  "CMakeFiles/bench_table4_interactions.dir/bench_table4_interactions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_interactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
