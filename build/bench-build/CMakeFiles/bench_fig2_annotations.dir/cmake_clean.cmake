file(REMOVE_RECURSE
  "../bench/bench_fig2_annotations"
  "../bench/bench_fig2_annotations.pdb"
  "CMakeFiles/bench_fig2_annotations.dir/bench_fig2_annotations.cc.o"
  "CMakeFiles/bench_fig2_annotations.dir/bench_fig2_annotations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_annotations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
