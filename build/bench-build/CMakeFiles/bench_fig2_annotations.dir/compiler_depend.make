# Empty compiler generated dependencies file for bench_fig2_annotations.
# This may be replaced when dependencies are built.
