file(REMOVE_RECURSE
  "../bench/bench_fig3_regional"
  "../bench/bench_fig3_regional.pdb"
  "CMakeFiles/bench_fig3_regional.dir/bench_fig3_regional.cc.o"
  "CMakeFiles/bench_fig3_regional.dir/bench_fig3_regional.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_regional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
