file(REMOVE_RECURSE
  "../bench/bench_table1_actions"
  "../bench/bench_table1_actions.pdb"
  "CMakeFiles/bench_table1_actions.dir/bench_table1_actions.cc.o"
  "CMakeFiles/bench_table1_actions.dir/bench_table1_actions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_actions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
