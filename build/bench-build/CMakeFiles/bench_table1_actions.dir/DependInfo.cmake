
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_actions.cc" "bench-build/CMakeFiles/bench_table1_actions.dir/bench_table1_actions.cc.o" "gcc" "bench-build/CMakeFiles/bench_table1_actions.dir/bench_table1_actions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pivot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pivot_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pivot_actions.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pivot_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pivot_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pivot_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
