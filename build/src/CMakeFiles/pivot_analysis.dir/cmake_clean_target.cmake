file(REMOVE_RECURSE
  "libpivot_analysis.a"
)
