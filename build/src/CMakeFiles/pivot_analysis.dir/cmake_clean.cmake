file(REMOVE_RECURSE
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/analyses.cc.o"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/analyses.cc.o.d"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/cfg.cc.o"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/cfg.cc.o.d"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/dag.cc.o"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/dag.cc.o.d"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/dataflow.cc.o"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/dataflow.cc.o.d"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/defuse.cc.o"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/defuse.cc.o.d"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/depend.cc.o"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/depend.cc.o.d"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/dominators.cc.o"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/dominators.cc.o.d"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/flatten.cc.o"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/flatten.cc.o.d"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/loops.cc.o"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/loops.cc.o.d"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/pdg.cc.o"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/pdg.cc.o.d"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/summary.cc.o"
  "CMakeFiles/pivot_analysis.dir/pivot/analysis/summary.cc.o.d"
  "libpivot_analysis.a"
  "libpivot_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
