# Empty dependencies file for pivot_analysis.
# This may be replaced when dependencies are built.
