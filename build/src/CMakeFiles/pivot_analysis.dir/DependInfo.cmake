
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pivot/analysis/analyses.cc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/analyses.cc.o" "gcc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/analyses.cc.o.d"
  "/root/repo/src/pivot/analysis/cfg.cc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/cfg.cc.o" "gcc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/cfg.cc.o.d"
  "/root/repo/src/pivot/analysis/dag.cc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/dag.cc.o" "gcc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/dag.cc.o.d"
  "/root/repo/src/pivot/analysis/dataflow.cc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/dataflow.cc.o" "gcc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/dataflow.cc.o.d"
  "/root/repo/src/pivot/analysis/defuse.cc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/defuse.cc.o" "gcc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/defuse.cc.o.d"
  "/root/repo/src/pivot/analysis/depend.cc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/depend.cc.o" "gcc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/depend.cc.o.d"
  "/root/repo/src/pivot/analysis/dominators.cc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/dominators.cc.o" "gcc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/dominators.cc.o.d"
  "/root/repo/src/pivot/analysis/flatten.cc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/flatten.cc.o" "gcc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/flatten.cc.o.d"
  "/root/repo/src/pivot/analysis/loops.cc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/loops.cc.o" "gcc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/loops.cc.o.d"
  "/root/repo/src/pivot/analysis/pdg.cc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/pdg.cc.o" "gcc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/pdg.cc.o.d"
  "/root/repo/src/pivot/analysis/summary.cc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/summary.cc.o" "gcc" "src/CMakeFiles/pivot_analysis.dir/pivot/analysis/summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pivot_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pivot_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
