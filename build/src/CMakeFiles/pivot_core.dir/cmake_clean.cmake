file(REMOVE_RECURSE
  "CMakeFiles/pivot_core.dir/pivot/core/edits.cc.o"
  "CMakeFiles/pivot_core.dir/pivot/core/edits.cc.o.d"
  "CMakeFiles/pivot_core.dir/pivot/core/history.cc.o"
  "CMakeFiles/pivot_core.dir/pivot/core/history.cc.o.d"
  "CMakeFiles/pivot_core.dir/pivot/core/interactions.cc.o"
  "CMakeFiles/pivot_core.dir/pivot/core/interactions.cc.o.d"
  "CMakeFiles/pivot_core.dir/pivot/core/region.cc.o"
  "CMakeFiles/pivot_core.dir/pivot/core/region.cc.o.d"
  "CMakeFiles/pivot_core.dir/pivot/core/report.cc.o"
  "CMakeFiles/pivot_core.dir/pivot/core/report.cc.o.d"
  "CMakeFiles/pivot_core.dir/pivot/core/session.cc.o"
  "CMakeFiles/pivot_core.dir/pivot/core/session.cc.o.d"
  "CMakeFiles/pivot_core.dir/pivot/core/trace.cc.o"
  "CMakeFiles/pivot_core.dir/pivot/core/trace.cc.o.d"
  "CMakeFiles/pivot_core.dir/pivot/core/undo_engine.cc.o"
  "CMakeFiles/pivot_core.dir/pivot/core/undo_engine.cc.o.d"
  "libpivot_core.a"
  "libpivot_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
