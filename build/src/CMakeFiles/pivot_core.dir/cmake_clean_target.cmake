file(REMOVE_RECURSE
  "libpivot_core.a"
)
