
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pivot/core/edits.cc" "src/CMakeFiles/pivot_core.dir/pivot/core/edits.cc.o" "gcc" "src/CMakeFiles/pivot_core.dir/pivot/core/edits.cc.o.d"
  "/root/repo/src/pivot/core/history.cc" "src/CMakeFiles/pivot_core.dir/pivot/core/history.cc.o" "gcc" "src/CMakeFiles/pivot_core.dir/pivot/core/history.cc.o.d"
  "/root/repo/src/pivot/core/interactions.cc" "src/CMakeFiles/pivot_core.dir/pivot/core/interactions.cc.o" "gcc" "src/CMakeFiles/pivot_core.dir/pivot/core/interactions.cc.o.d"
  "/root/repo/src/pivot/core/region.cc" "src/CMakeFiles/pivot_core.dir/pivot/core/region.cc.o" "gcc" "src/CMakeFiles/pivot_core.dir/pivot/core/region.cc.o.d"
  "/root/repo/src/pivot/core/report.cc" "src/CMakeFiles/pivot_core.dir/pivot/core/report.cc.o" "gcc" "src/CMakeFiles/pivot_core.dir/pivot/core/report.cc.o.d"
  "/root/repo/src/pivot/core/session.cc" "src/CMakeFiles/pivot_core.dir/pivot/core/session.cc.o" "gcc" "src/CMakeFiles/pivot_core.dir/pivot/core/session.cc.o.d"
  "/root/repo/src/pivot/core/trace.cc" "src/CMakeFiles/pivot_core.dir/pivot/core/trace.cc.o" "gcc" "src/CMakeFiles/pivot_core.dir/pivot/core/trace.cc.o.d"
  "/root/repo/src/pivot/core/undo_engine.cc" "src/CMakeFiles/pivot_core.dir/pivot/core/undo_engine.cc.o" "gcc" "src/CMakeFiles/pivot_core.dir/pivot/core/undo_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pivot_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pivot_actions.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pivot_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pivot_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pivot_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
