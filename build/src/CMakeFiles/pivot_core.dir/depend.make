# Empty dependencies file for pivot_core.
# This may be replaced when dependencies are built.
