file(REMOVE_RECURSE
  "libpivot_transform.a"
)
