file(REMOVE_RECURSE
  "CMakeFiles/pivot_transform.dir/pivot/transform/catalog.cc.o"
  "CMakeFiles/pivot_transform.dir/pivot/transform/catalog.cc.o.d"
  "CMakeFiles/pivot_transform.dir/pivot/transform/cfo.cc.o"
  "CMakeFiles/pivot_transform.dir/pivot/transform/cfo.cc.o.d"
  "CMakeFiles/pivot_transform.dir/pivot/transform/cpp.cc.o"
  "CMakeFiles/pivot_transform.dir/pivot/transform/cpp.cc.o.d"
  "CMakeFiles/pivot_transform.dir/pivot/transform/cse.cc.o"
  "CMakeFiles/pivot_transform.dir/pivot/transform/cse.cc.o.d"
  "CMakeFiles/pivot_transform.dir/pivot/transform/ctp.cc.o"
  "CMakeFiles/pivot_transform.dir/pivot/transform/ctp.cc.o.d"
  "CMakeFiles/pivot_transform.dir/pivot/transform/dce.cc.o"
  "CMakeFiles/pivot_transform.dir/pivot/transform/dce.cc.o.d"
  "CMakeFiles/pivot_transform.dir/pivot/transform/fus.cc.o"
  "CMakeFiles/pivot_transform.dir/pivot/transform/fus.cc.o.d"
  "CMakeFiles/pivot_transform.dir/pivot/transform/icm.cc.o"
  "CMakeFiles/pivot_transform.dir/pivot/transform/icm.cc.o.d"
  "CMakeFiles/pivot_transform.dir/pivot/transform/inx.cc.o"
  "CMakeFiles/pivot_transform.dir/pivot/transform/inx.cc.o.d"
  "CMakeFiles/pivot_transform.dir/pivot/transform/lur.cc.o"
  "CMakeFiles/pivot_transform.dir/pivot/transform/lur.cc.o.d"
  "CMakeFiles/pivot_transform.dir/pivot/transform/patterns.cc.o"
  "CMakeFiles/pivot_transform.dir/pivot/transform/patterns.cc.o.d"
  "CMakeFiles/pivot_transform.dir/pivot/transform/smi.cc.o"
  "CMakeFiles/pivot_transform.dir/pivot/transform/smi.cc.o.d"
  "CMakeFiles/pivot_transform.dir/pivot/transform/spec.cc.o"
  "CMakeFiles/pivot_transform.dir/pivot/transform/spec.cc.o.d"
  "CMakeFiles/pivot_transform.dir/pivot/transform/transform.cc.o"
  "CMakeFiles/pivot_transform.dir/pivot/transform/transform.cc.o.d"
  "libpivot_transform.a"
  "libpivot_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
