# Empty compiler generated dependencies file for pivot_transform.
# This may be replaced when dependencies are built.
