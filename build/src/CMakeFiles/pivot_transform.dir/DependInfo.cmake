
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pivot/transform/catalog.cc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/catalog.cc.o" "gcc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/catalog.cc.o.d"
  "/root/repo/src/pivot/transform/cfo.cc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/cfo.cc.o" "gcc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/cfo.cc.o.d"
  "/root/repo/src/pivot/transform/cpp.cc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/cpp.cc.o" "gcc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/cpp.cc.o.d"
  "/root/repo/src/pivot/transform/cse.cc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/cse.cc.o" "gcc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/cse.cc.o.d"
  "/root/repo/src/pivot/transform/ctp.cc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/ctp.cc.o" "gcc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/ctp.cc.o.d"
  "/root/repo/src/pivot/transform/dce.cc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/dce.cc.o" "gcc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/dce.cc.o.d"
  "/root/repo/src/pivot/transform/fus.cc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/fus.cc.o" "gcc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/fus.cc.o.d"
  "/root/repo/src/pivot/transform/icm.cc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/icm.cc.o" "gcc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/icm.cc.o.d"
  "/root/repo/src/pivot/transform/inx.cc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/inx.cc.o" "gcc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/inx.cc.o.d"
  "/root/repo/src/pivot/transform/lur.cc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/lur.cc.o" "gcc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/lur.cc.o.d"
  "/root/repo/src/pivot/transform/patterns.cc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/patterns.cc.o" "gcc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/patterns.cc.o.d"
  "/root/repo/src/pivot/transform/smi.cc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/smi.cc.o" "gcc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/smi.cc.o.d"
  "/root/repo/src/pivot/transform/spec.cc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/spec.cc.o" "gcc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/spec.cc.o.d"
  "/root/repo/src/pivot/transform/transform.cc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/transform.cc.o" "gcc" "src/CMakeFiles/pivot_transform.dir/pivot/transform/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pivot_actions.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pivot_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pivot_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pivot_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
