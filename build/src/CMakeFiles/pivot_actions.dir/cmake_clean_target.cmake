file(REMOVE_RECURSE
  "libpivot_actions.a"
)
