file(REMOVE_RECURSE
  "CMakeFiles/pivot_actions.dir/pivot/actions/action.cc.o"
  "CMakeFiles/pivot_actions.dir/pivot/actions/action.cc.o.d"
  "CMakeFiles/pivot_actions.dir/pivot/actions/annotations.cc.o"
  "CMakeFiles/pivot_actions.dir/pivot/actions/annotations.cc.o.d"
  "CMakeFiles/pivot_actions.dir/pivot/actions/journal.cc.o"
  "CMakeFiles/pivot_actions.dir/pivot/actions/journal.cc.o.d"
  "CMakeFiles/pivot_actions.dir/pivot/actions/location.cc.o"
  "CMakeFiles/pivot_actions.dir/pivot/actions/location.cc.o.d"
  "libpivot_actions.a"
  "libpivot_actions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_actions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
