# Empty dependencies file for pivot_actions.
# This may be replaced when dependencies are built.
