
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pivot/actions/action.cc" "src/CMakeFiles/pivot_actions.dir/pivot/actions/action.cc.o" "gcc" "src/CMakeFiles/pivot_actions.dir/pivot/actions/action.cc.o.d"
  "/root/repo/src/pivot/actions/annotations.cc" "src/CMakeFiles/pivot_actions.dir/pivot/actions/annotations.cc.o" "gcc" "src/CMakeFiles/pivot_actions.dir/pivot/actions/annotations.cc.o.d"
  "/root/repo/src/pivot/actions/journal.cc" "src/CMakeFiles/pivot_actions.dir/pivot/actions/journal.cc.o" "gcc" "src/CMakeFiles/pivot_actions.dir/pivot/actions/journal.cc.o.d"
  "/root/repo/src/pivot/actions/location.cc" "src/CMakeFiles/pivot_actions.dir/pivot/actions/location.cc.o" "gcc" "src/CMakeFiles/pivot_actions.dir/pivot/actions/location.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pivot_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pivot_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pivot_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
