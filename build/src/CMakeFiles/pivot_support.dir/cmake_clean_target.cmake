file(REMOVE_RECURSE
  "libpivot_support.a"
)
