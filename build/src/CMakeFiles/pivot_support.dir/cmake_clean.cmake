file(REMOVE_RECURSE
  "CMakeFiles/pivot_support.dir/pivot/support/bitset.cc.o"
  "CMakeFiles/pivot_support.dir/pivot/support/bitset.cc.o.d"
  "CMakeFiles/pivot_support.dir/pivot/support/diagnostics.cc.o"
  "CMakeFiles/pivot_support.dir/pivot/support/diagnostics.cc.o.d"
  "CMakeFiles/pivot_support.dir/pivot/support/rng.cc.o"
  "CMakeFiles/pivot_support.dir/pivot/support/rng.cc.o.d"
  "CMakeFiles/pivot_support.dir/pivot/support/table.cc.o"
  "CMakeFiles/pivot_support.dir/pivot/support/table.cc.o.d"
  "libpivot_support.a"
  "libpivot_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
