# Empty compiler generated dependencies file for pivot_support.
# This may be replaced when dependencies are built.
