# Empty dependencies file for pivot_support.
# This may be replaced when dependencies are built.
