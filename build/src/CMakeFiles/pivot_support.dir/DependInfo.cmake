
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pivot/support/bitset.cc" "src/CMakeFiles/pivot_support.dir/pivot/support/bitset.cc.o" "gcc" "src/CMakeFiles/pivot_support.dir/pivot/support/bitset.cc.o.d"
  "/root/repo/src/pivot/support/diagnostics.cc" "src/CMakeFiles/pivot_support.dir/pivot/support/diagnostics.cc.o" "gcc" "src/CMakeFiles/pivot_support.dir/pivot/support/diagnostics.cc.o.d"
  "/root/repo/src/pivot/support/rng.cc" "src/CMakeFiles/pivot_support.dir/pivot/support/rng.cc.o" "gcc" "src/CMakeFiles/pivot_support.dir/pivot/support/rng.cc.o.d"
  "/root/repo/src/pivot/support/table.cc" "src/CMakeFiles/pivot_support.dir/pivot/support/table.cc.o" "gcc" "src/CMakeFiles/pivot_support.dir/pivot/support/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
