file(REMOVE_RECURSE
  "CMakeFiles/pivot_ir.dir/pivot/ir/builder.cc.o"
  "CMakeFiles/pivot_ir.dir/pivot/ir/builder.cc.o.d"
  "CMakeFiles/pivot_ir.dir/pivot/ir/diff.cc.o"
  "CMakeFiles/pivot_ir.dir/pivot/ir/diff.cc.o.d"
  "CMakeFiles/pivot_ir.dir/pivot/ir/expr.cc.o"
  "CMakeFiles/pivot_ir.dir/pivot/ir/expr.cc.o.d"
  "CMakeFiles/pivot_ir.dir/pivot/ir/interp.cc.o"
  "CMakeFiles/pivot_ir.dir/pivot/ir/interp.cc.o.d"
  "CMakeFiles/pivot_ir.dir/pivot/ir/lexer.cc.o"
  "CMakeFiles/pivot_ir.dir/pivot/ir/lexer.cc.o.d"
  "CMakeFiles/pivot_ir.dir/pivot/ir/parser.cc.o"
  "CMakeFiles/pivot_ir.dir/pivot/ir/parser.cc.o.d"
  "CMakeFiles/pivot_ir.dir/pivot/ir/printer.cc.o"
  "CMakeFiles/pivot_ir.dir/pivot/ir/printer.cc.o.d"
  "CMakeFiles/pivot_ir.dir/pivot/ir/program.cc.o"
  "CMakeFiles/pivot_ir.dir/pivot/ir/program.cc.o.d"
  "CMakeFiles/pivot_ir.dir/pivot/ir/random_program.cc.o"
  "CMakeFiles/pivot_ir.dir/pivot/ir/random_program.cc.o.d"
  "CMakeFiles/pivot_ir.dir/pivot/ir/stmt.cc.o"
  "CMakeFiles/pivot_ir.dir/pivot/ir/stmt.cc.o.d"
  "CMakeFiles/pivot_ir.dir/pivot/ir/validate.cc.o"
  "CMakeFiles/pivot_ir.dir/pivot/ir/validate.cc.o.d"
  "libpivot_ir.a"
  "libpivot_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
