# Empty dependencies file for pivot_ir.
# This may be replaced when dependencies are built.
