file(REMOVE_RECURSE
  "libpivot_ir.a"
)
