
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pivot/ir/builder.cc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/builder.cc.o" "gcc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/builder.cc.o.d"
  "/root/repo/src/pivot/ir/diff.cc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/diff.cc.o" "gcc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/diff.cc.o.d"
  "/root/repo/src/pivot/ir/expr.cc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/expr.cc.o" "gcc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/expr.cc.o.d"
  "/root/repo/src/pivot/ir/interp.cc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/interp.cc.o" "gcc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/interp.cc.o.d"
  "/root/repo/src/pivot/ir/lexer.cc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/lexer.cc.o" "gcc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/lexer.cc.o.d"
  "/root/repo/src/pivot/ir/parser.cc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/parser.cc.o" "gcc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/parser.cc.o.d"
  "/root/repo/src/pivot/ir/printer.cc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/printer.cc.o" "gcc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/printer.cc.o.d"
  "/root/repo/src/pivot/ir/program.cc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/program.cc.o" "gcc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/program.cc.o.d"
  "/root/repo/src/pivot/ir/random_program.cc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/random_program.cc.o" "gcc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/random_program.cc.o.d"
  "/root/repo/src/pivot/ir/stmt.cc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/stmt.cc.o" "gcc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/stmt.cc.o.d"
  "/root/repo/src/pivot/ir/validate.cc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/validate.cc.o" "gcc" "src/CMakeFiles/pivot_ir.dir/pivot/ir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pivot_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
