# Empty compiler generated dependencies file for parallelize_pipeline.
# This may be replaced when dependencies are built.
