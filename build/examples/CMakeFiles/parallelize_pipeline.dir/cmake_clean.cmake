file(REMOVE_RECURSE
  "CMakeFiles/parallelize_pipeline.dir/parallelize_pipeline.cpp.o"
  "CMakeFiles/parallelize_pipeline.dir/parallelize_pipeline.cpp.o.d"
  "parallelize_pipeline"
  "parallelize_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallelize_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
