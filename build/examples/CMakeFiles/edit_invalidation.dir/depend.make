# Empty dependencies file for edit_invalidation.
# This may be replaced when dependencies are built.
