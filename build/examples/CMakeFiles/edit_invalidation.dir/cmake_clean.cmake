file(REMOVE_RECURSE
  "CMakeFiles/edit_invalidation.dir/edit_invalidation.cpp.o"
  "CMakeFiles/edit_invalidation.dir/edit_invalidation.cpp.o.d"
  "edit_invalidation"
  "edit_invalidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edit_invalidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
