file(REMOVE_RECURSE
  "CMakeFiles/pivot_repl.dir/pivot_repl.cpp.o"
  "CMakeFiles/pivot_repl.dir/pivot_repl.cpp.o.d"
  "pivot_repl"
  "pivot_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
