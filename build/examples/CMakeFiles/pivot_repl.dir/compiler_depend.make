# Empty compiler generated dependencies file for pivot_repl.
# This may be replaced when dependencies are built.
