// A small parallelizing-compiler pipeline over the public API: apply every
// enabled transformation greedily (scalar cleanups + loop restructuring),
// verify semantics with the interpreter at every step, then selectively
// roll back the loop interchange while keeping everything else — the
// "remove ineffective transformations" workflow from the paper's
// introduction.
//
//   ./build/examples/parallelize_pipeline
#include <iostream>

#include "pivot/core/session.h"
#include "pivot/ir/parser.h"
#include "pivot/transform/catalog.h"

int main() {
  using namespace pivot;

  const char* source = R"(
read scale
c = 2
do i = 1, 6
  do j = 1, 4
    grid(i, j) = i * 10 + j
  enddo
enddo
do i = 1, 8
  row(i) = scale * c
enddo
do i = 1, 8
  col(i) = row(i) + i
enddo
write grid(3, 2)
write row(5)
write col(7)
write c
)";

  Session session(Parse(source));
  Program original = session.program().Clone();
  const std::vector<double> input{1.5};

  std::cout << "=== source ===\n" << session.Source();

  // Greedy pipeline: each pass applies everything it can find.
  int total = 0;
  for (TransformKind kind :
       {TransformKind::kCtp, TransformKind::kCfo, TransformKind::kCse,
        TransformKind::kCpp, TransformKind::kDce, TransformKind::kIcm,
        TransformKind::kFus, TransformKind::kInx, TransformKind::kSmi,
        TransformKind::kLur}) {
    const int n = session.ApplyEverywhere(kind, /*max_applications=*/4);
    if (n > 0) {
      std::cout << "applied " << TransformKindName(kind) << " x" << n
                << '\n';
      total += n;
    }
    if (!SameBehavior(original, session.program(), input)) {
      std::cerr << "semantics broken by " << TransformKindName(kind)
                << "!\n";
      return 1;
    }
  }

  std::cout << "\n=== after " << total << " transformations ===\n"
            << session.Source();
  std::cout << "\n=== history ===\n" << session.HistoryToString();

  // Scheduling feedback says the interchange didn't pay off: remove every
  // INX, independent of application order, keeping the rest.
  std::cout << "\n=== rolling back INX only ===\n";
  for (const TransformRecord& rec : session.history().records()) {
    if (!rec.is_edit && !rec.undone && rec.kind == TransformKind::kInx) {
      const UndoStats stats = session.Undo(rec.stamp);
      std::cout << "undo t" << rec.stamp << ": " << stats.transforms_undone
                << " transformation(s) unwound ("
                << stats.safety_checks << " safety checks)\n";
    }
  }
  std::cout << session.Source();

  if (!SameBehavior(original, session.program(), input)) {
    std::cerr << "semantics broken by the rollback!\n";
    return 1;
  }
  std::cout << "\nsemantics verified against the original program.\n";
  return 0;
}
