// Quickstart: apply four transformations to the paper's running example
// (Figure 1) and undo one of them in an independent order (§5.2).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "pivot/core/session.h"
#include "pivot/ir/parser.h"
#include "pivot/transform/catalog.h"

int main() {
  using namespace pivot;

  // The program segment of Figure 1.
  const char* source = R"(
1: D = E + F
2: C = 1
3: do i = 1, 100
4:   do j = 1, 50
5:     A(j) = B(j) + C
6:     R(i, j) = E + F
     enddo
   enddo
)";

  Session session(Parse(source));
  std::cout << "=== original ===\n" << session.Source();

  // Apply CSE, CTP, INX, ICM — the order of §5.2.
  const OrderStamp cse = *session.ApplyFirst(TransformKind::kCse);
  const OrderStamp ctp = *session.ApplyFirst(TransformKind::kCtp);
  const OrderStamp inx = *session.ApplyFirst(TransformKind::kInx);
  const OrderStamp icm = *session.ApplyFirst(TransformKind::kIcm);

  std::cout << "\n=== after CSE, CTP, INX, ICM ===\n" << session.Source();
  std::cout << "\n=== history ===\n" << session.HistoryToString();
  std::cout << "\n=== APDG/ADAG annotations ===\n"
            << session.AnnotationsToString();

  // Undo INX in an independent order. Its post-pattern "Tight Loops" was
  // invalidated by ICM moving statement 5 between the headers, so the
  // engine undoes ICM (the affecting transformation) first — exactly the
  // paper's walk-through.
  std::cout << "\n=== UNDO(t" << inx << " = INX) ===\n";
  const UndoStats stats = session.Undo(inx);
  std::cout << "transforms undone: " << stats.transforms_undone
            << " (INX plus the affecting ICM)\n";
  std::cout << "actions inverted:  " << stats.actions_inverted << "\n";

  std::cout << "\n=== after undo ===\n" << session.Source();
  std::cout << "\n=== history ===\n" << session.HistoryToString();

  // CSE and CTP are untouched — independent order preserved them.
  (void)cse;
  (void)ctp;
  (void)icm;
  return 0;
}
