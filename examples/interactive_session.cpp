// A scripted interactive session, standing in for the PIVOT GUI the paper
// built the undo facility for: the "user" inspects opportunities, applies
// transformations, changes their mind about one in the middle of the
// history, and undoes it without losing the rest.
//
//   ./build/examples/interactive_session
#include <iostream>

#include "pivot/core/session.h"
#include "pivot/ir/parser.h"
#include "pivot/transform/catalog.h"

namespace {

void Banner(const std::string& title) {
  std::cout << "\n----- " << title << " -----\n";
}

}  // namespace

int main() {
  using namespace pivot;

  Session session(Parse(R"(
read n
c = 2
s = 0
do i = 1, 4
  t = c * 10
  a(i) = t + i
enddo
do i = 1, 4
  b(i) = a(i) + n
enddo
write a(3)
write b(2)
write s
write c
)"));

  Banner("source");
  std::cout << session.Source();

  // The user asks what can be done.
  Banner("opportunities");
  for (TransformKind kind : AllTransformKinds()) {
    for (const Opportunity& op : session.FindOpportunities(kind)) {
      std::cout << "  " << op.Describe(session.program()) << '\n';
    }
  }

  // They apply a few.
  const OrderStamp ctp = *session.ApplyFirst(TransformKind::kCtp);
  const OrderStamp icm = *session.ApplyFirst(TransformKind::kIcm);
  const OrderStamp fus = *session.ApplyFirst(TransformKind::kFus);
  Banner("after CTP, ICM, FUS");
  std::cout << session.Source();
  Banner("history");
  std::cout << session.HistoryToString();

  // Second thoughts about the fusion (say the scheduler performed worse,
  // the paper's motivation from [19]): undo just that one.
  Banner("UNDO(t" + std::to_string(fus) + " = FUS)");
  std::string reason;
  if (!session.CanUndo(fus, &reason)) {
    std::cout << "blocked: " << reason << '\n';
    return 1;
  }
  const UndoStats stats = session.Undo(fus);
  std::cout << "transformations undone: " << stats.transforms_undone
            << ", inverse actions: " << stats.actions_inverted << '\n';
  std::cout << session.Source();

  // CTP and ICM are still in place.
  Banner("history after selective undo");
  std::cout << session.HistoryToString();

  // And the earlier CTP can still go independently, rippling nothing.
  Banner("UNDO(t" + std::to_string(ctp) + " = CTP)");
  session.Undo(ctp);
  std::cout << session.Source();
  Banner("final history");
  std::cout << session.HistoryToString();
  (void)icm;
  return 0;
}
