// pivot_repl — an interactive command-line front end over the Session
// API, the closest thing in this repository to the PIVOT environment the
// paper's undo facility was built for.
//
//   ./build/examples/pivot_repl [file.pf]      # or reads program from stdin
//
// Commands (also printed by `help`):
//   show                     print the program
//   ops [KIND]               list opportunities (all kinds or one)
//   apply KIND [N]           apply the N-th opportunity of KIND (default 0)
//   undo T                   independent-order undo of transformation T
//   undolast                 reverse-order undo of the latest one
//   canundo T                explain whether T can be undone
//   history                  print the transformation history
//   annos                    print the APDG/ADAG annotations
//   pdg                      print the program dependence graph
//   run [v1 v2 ...]          execute with the given input values
//   edit-const LABEL VALUE   edit: replace rhs of labelled stmt by VALUE
//   remove-unsafe            undo transformations made unsafe by edits
//   quit
#include <iostream>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "pivot/core/report.h"
#include "pivot/core/session.h"
#include "pivot/ir/parser.h"
#include "pivot/transform/catalog.h"

namespace {

using namespace pivot;

std::optional<TransformKind> KindByName(const std::string& name) {
  for (TransformKind kind : AllTransformKinds()) {
    std::string lower = TransformKindName(kind);
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    std::string wanted = name;
    for (char& c : wanted) c = static_cast<char>(std::tolower(c));
    if (lower == wanted) return kind;
  }
  return std::nullopt;
}

void PrintHelp() {
  std::cout <<
      "commands:\n"
      "  show | ops [kind] | apply KIND [N] | undo T | undolast |\n"
      "  canundo T | history | annos | pdg | run [inputs...] |\n"
      "  trace on|off|show | report | health | preview T |\n"
      "  edit-const LABEL VALUE | remove-unsafe |\n"
      "  help | quit\n";
}

void ListOps(Session& session, std::optional<TransformKind> only) {
  for (TransformKind kind : AllTransformKinds()) {
    if (only && *only != kind) continue;
    const auto ops = session.FindOpportunities(kind);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      std::cout << "  [" << i << "] " << ops[i].Describe(session.program())
                << '\n';
    }
  }
}

int Repl(Session& session, std::istream& in, bool interactive) {
  std::string line;
  UndoTrace trace;
  bool tracing = false;
  if (interactive) std::cout << "pivot> " << std::flush;
  while (std::getline(in, line)) {
    std::istringstream cmd(line);
    std::string verb;
    cmd >> verb;
    try {
      if (verb.empty() || verb[0] == '#') {
        // comment / blank
      } else if (verb == "quit" || verb == "exit") {
        break;
      } else if (verb == "help") {
        PrintHelp();
      } else if (verb == "show") {
        std::cout << session.Source();
      } else if (verb == "ops") {
        std::string kind_name;
        cmd >> kind_name;
        ListOps(session, kind_name.empty() ? std::nullopt
                                           : KindByName(kind_name));
      } else if (verb == "apply") {
        std::string kind_name;
        std::size_t index = 0;
        cmd >> kind_name >> index;
        const auto kind = KindByName(kind_name);
        if (!kind) {
          std::cout << "unknown transformation '" << kind_name << "'\n";
        } else {
          const auto ops = session.FindOpportunities(*kind);
          if (index >= ops.size()) {
            std::cout << "no opportunity #" << index << " for "
                      << kind_name << '\n';
          } else {
            const OrderStamp t = session.Apply(ops[index]);
            std::cout << "applied t" << t << ": "
                      << ops[index].Describe(session.program()) << '\n';
          }
        }
      } else if (verb == "undo") {
        OrderStamp t = 0;
        cmd >> t;
        trace.Clear();
        const UndoStats stats = session.Undo(t);
        std::cout << "undone " << stats.transforms_undone
                  << " transformation(s), " << stats.actions_inverted
                  << " inverse action(s), " << stats.safety_checks
                  << " safety check(s)\n";
        if (tracing) std::cout << trace.Render();
      } else if (verb == "trace") {
        std::string mode;
        cmd >> mode;
        if (mode == "on") {
          tracing = true;
          session.engine().set_trace(&trace);
          std::cout << "undo tracing enabled\n";
        } else if (mode == "off") {
          tracing = false;
          session.engine().set_trace(nullptr);
          std::cout << "undo tracing disabled\n";
        } else {
          std::cout << trace.Render();
        }
      } else if (verb == "undolast") {
        const OrderStamp t = session.UndoLast();
        if (t == kNoStamp) {
          std::cout << "nothing to undo\n";
        } else {
          std::cout << "undone t" << t << '\n';
        }
      } else if (verb == "canundo") {
        OrderStamp t = 0;
        cmd >> t;
        std::string reason;
        if (session.CanUndo(t, &reason)) {
          std::cout << "yes\n";
        } else {
          std::cout << "no: " << reason << '\n';
        }
      } else if (verb == "report") {
        std::cout << RenderSessionReport(session);
      } else if (verb == "health") {
        std::cout << RenderHealthCheck(session);
      } else if (verb == "preview") {
        OrderStamp t = 0;
        cmd >> t;
        const auto preview = session.engine().Preview(t);
        if (!preview.possible) {
          std::cout << "cannot undo: " << preview.blocked_reason << '\n';
        } else {
          std::cout << "undoable";
          if (!preview.affecting.empty()) {
            std::cout << "; must first undo:";
            for (OrderStamp a : preview.affecting) std::cout << " t" << a;
          }
          if (!preview.may_ripple.empty()) {
            std::cout << "; may ripple:";
            for (OrderStamp a : preview.may_ripple) std::cout << " t" << a;
          }
          std::cout << '\n';
        }
      } else if (verb == "history") {
        std::cout << session.HistoryToString();
      } else if (verb == "annos") {
        std::cout << session.AnnotationsToString();
      } else if (verb == "pdg") {
        std::cout << session.analyses().pdg().ToString();
      } else if (verb == "run") {
        std::vector<double> input;
        double v;
        while (cmd >> v) input.push_back(v);
        const InterpResult r = session.Execute(input);
        if (!r.ok) {
          std::cout << "execution error: " << r.error << '\n';
        } else {
          std::cout << "output:";
          for (double out : r.output) std::cout << ' ' << out;
          std::cout << " (" << r.steps << " steps)\n";
        }
      } else if (verb == "edit-const") {
        int label = 0;
        long value = 0;
        cmd >> label >> value;
        Stmt* stmt = session.program().FindByLabel(label);
        if (stmt == nullptr || stmt->rhs == nullptr) {
          std::cout << "no assignment labelled " << label << '\n';
        } else {
          const OrderStamp t =
              session.editor().ReplaceExpr(*stmt->rhs, MakeIntConst(value));
          std::cout << "edit recorded as t" << t << '\n';
        }
      } else if (verb == "remove-unsafe") {
        std::vector<OrderStamp> blocked;
        const auto undone = session.RemoveUnsafeTransforms(&blocked);
        std::cout << "removed";
        for (OrderStamp t : undone) std::cout << " t" << t;
        if (undone.empty()) std::cout << " nothing";
        if (!blocked.empty()) {
          std::cout << "; blocked by edits:";
          for (OrderStamp t : blocked) std::cout << " t" << t;
        }
        std::cout << '\n';
      } else {
        std::cout << "unknown command '" << verb << "' (try help)\n";
      }
    } catch (const std::exception& e) {
      std::cout << "error: " << e.what() << '\n';
    }
    if (interactive) std::cout << "pivot> " << std::flush;
  }
  return 0;
}

const char* kDefaultProgram = R"(
1: c = 1
2: d = e + f
3: r = e + f
4: x = c + 2
5: do i = 1, 100
6:   do j = 1, 50
7:     a(j) = b(j) + c
8:     s(i, j) = e + f
     enddo
   enddo
write r
write x
write a(5)
write d
write c
)";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kDefaultProgram;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << '\n';
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    source = buffer.str();
  }
  try {
    Session session(Parse(source));
    std::cout << "pivot-undo REPL — " << session.program().AttachedStmtCount()
              << " statements loaded (help for commands)\n";
    return Repl(session, std::cin, /*interactive=*/true);
  } catch (const std::exception& e) {
    std::cerr << "parse error: " << e.what() << '\n';
    return 1;
  }
}
