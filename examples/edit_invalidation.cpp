// Edit-driven invalidation: the incremental-reoptimization scenario the
// paper motivates. The program is optimized, then the user edits it; only
// the transformations whose safety the edit destroyed are removed — the
// rest stay, avoiding the redo-everything strawman.
//
//   ./build/examples/edit_invalidation
#include <iostream>

#include "pivot/core/session.h"
#include "pivot/ir/parser.h"
#include "pivot/transform/catalog.h"

int main() {
  using namespace pivot;

  Session session(Parse(R"(
c = 1
x = c + 2
q = 5
y = q * 3
write x
write y
write c
write q
)"));

  std::cout << "=== source ===\n" << session.Source();

  // Optimize: two independent CTP+CFO chains.
  session.ApplyEverywhere(TransformKind::kCtp);
  session.ApplyEverywhere(TransformKind::kCfo);
  std::cout << "\n=== optimized ===\n" << session.Source();
  std::cout << "\n=== history ===\n" << session.HistoryToString();

  // The user edits the first constant: c = 1 becomes c = 9.
  std::cout << "\n=== edit: c = 1  ->  c = 9 ===\n";
  session.editor().ReplaceExpr(*session.program().top()[0]->rhs,
                               MakeIntConst(9));
  std::cout << session.Source();

  // Detect and remove the transformations the edit made unsafe. The
  // q-cluster's CTP/CFO are untouched.
  std::vector<OrderStamp> blocked;
  const std::vector<OrderStamp> undone =
      session.RemoveUnsafeTransforms(&blocked);
  std::cout << "\n=== removed unsafe transformations:";
  for (OrderStamp t : undone) std::cout << " t" << t;
  std::cout << " ===\n" << session.Source();
  std::cout << "\n=== history ===\n" << session.HistoryToString();

  // Executing now reflects the edit: x = 11, y still folded to 15.
  const InterpResult result = session.Execute();
  std::cout << "\n=== output ===\n";
  for (double v : result.output) std::cout << v << '\n';
  return 0;
}
