#!/usr/bin/env bash
# Network chaos soak: tools/pivot_swarm forks one server and a swarm of
# client processes, injects the network faults a WAN deployment actually
# sees (torn frames, vanishing peers, slowloris stalls, client SIGKILLs)
# and SIGKILLs + restarts the server itself mid-flight, all while the
# server runs under aggressive session-lifecycle pressure (tiny resident
# cap + fast idle reaper, so commits constantly cross passivation and
# reactivation). The oracle is the crash sweep's acked-or-acked+1 rule:
# after the chaos window the data directory is recovered fresh and every
# session must match its client's recorded acked prefix (or prefix+1 for
# the one possibly-in-flight request). Any lost acked commit fails.
#
# Two runs: >= 64 clients over TCP, then a smaller run over the unix
# socket so both transports see the fault mix. Meant to run inside the
# sanitizer job (ci/run_sanitizers.sh) so ASan watches the server side.
#
# Tuning: PIVOT_SWARM_CLIENTS / _OPS / _SECONDS / _SERVER_KILLS /
# _CLIENT_KILLS / _SEED (see tools/pivot_swarm.cc).
#
# Usage: ci/run_swarm_soak.sh [build-dir]    (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

cmake -B "$BUILD_DIR" -S . -DPIVOT_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" --target pivot_swarm

# TCP, the full swarm: >= 64 client processes, several server crashes.
PIVOT_SWARM_CLIENTS="${PIVOT_SWARM_CLIENTS:-64}" \
PIVOT_SWARM_OPS="${PIVOT_SWARM_OPS:-32}" \
PIVOT_SWARM_SECONDS="${PIVOT_SWARM_SECONDS:-120}" \
PIVOT_SWARM_SERVER_KILLS="${PIVOT_SWARM_SERVER_KILLS:-5}" \
PIVOT_SWARM_CLIENT_KILLS="${PIVOT_SWARM_CLIENT_KILLS:-8}" \
PIVOT_SWARM_TRANSPORT=tcp \
  "$BUILD_DIR"/tools/pivot_swarm

# Unix socket, same fault mix at a smaller scale.
PIVOT_SWARM_CLIENTS=16 PIVOT_SWARM_OPS=24 PIVOT_SWARM_SECONDS=60 \
PIVOT_SWARM_SERVER_KILLS=2 PIVOT_SWARM_CLIENT_KILLS=4 \
PIVOT_SWARM_TRANSPORT=unix \
  "$BUILD_DIR"/tools/pivot_swarm

echo "swarm soak complete: no acked commit lost across network faults, kills and restarts"
