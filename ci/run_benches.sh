#!/usr/bin/env bash
# Builds the bench binaries and runs every one of them from the repo root,
# so each BenchJson emitter drops its BENCH_<name>.json next to this
# script's parent directory. The JSON files are committed: CI diffs them
# across commits to catch metric regressions (and the fig4 planner A/B
# enforces its >=3x speedup gate via the binary's exit code).
#
# Usage: ci/run_benches.sh [build-dir]        (default: build)
#   PIVOT_BENCH_SMOKE=1 ci/run_benches.sh     # quick smoke pass
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"

status=0
for bench in "$BUILD_DIR"/bench/*; do
  [ -x "$bench" ] || continue
  echo "== running $(basename "$bench") =="
  if ! "$bench"; then
    echo "FAIL: $(basename "$bench")" >&2
    status=1
  fi
done

ls -l BENCH_*.json || true
exit "$status"
