#!/usr/bin/env bash
# Server crash-and-concurrency soak under AddressSanitizer +
# UndefinedBehaviorSanitizer. Two layers:
#
#   * the deterministic crash sweep (tests/server_crash_test.cc): every
#     server.* fault point — torn session-WAL frames, the gap between the
#     session append and the group enqueue, torn group-log frames, the
#     post-fsync/pre-ack window, snapshots, reconciliation — crossed at
#     every countdown, each time restarting the server over the same data
#     directory and asserting both sessions recover to exactly the acked
#     (or acked + the single in-flight) prefix;
#   * the probabilistic concurrent soak (ConcurrentCrashSoakLosesNoAckedCommit):
#     several client threads committing in parallel, a fault armed at a
#     PIVOT_FUZZ_SEED-derived random crossing, then recovery of every
#     session with the same no-acked-commit-lost oracle. PIVOT_SOAK_ROUNDS
#     scales the number of crash/recover cycles.
#
# The functional server suite rides along: it covers the non-crash half
# (admission control, deadlines, degraded mode, transient absorption,
# drain, disconnects) with the sanitizers watching the threaded paths.
#
# Usage: ci/run_server_soak.sh [build-dir]    (default: build-asan)
#        PIVOT_FUZZ_SEED=N     seed for the probabilistic soak (default 1)
#        PIVOT_SOAK_ROUNDS=N   crash/recover cycles per seed (default 4)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export PIVOT_FUZZ_SEED="${PIVOT_FUZZ_SEED:-1}"
export PIVOT_SOAK_ROUNDS="${PIVOT_SOAK_ROUNDS:-4}"

cmake -B "$BUILD_DIR" -S . -DPIVOT_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" --target server_tests server_crash_tests

"$BUILD_DIR"/tests/server_tests
"$BUILD_DIR"/tests/server_crash_tests

echo "server soak complete: every server crash point recovered the acked prefix under ASan+UBSan (seed=$PIVOT_FUZZ_SEED rounds=$PIVOT_SOAK_ROUNDS)"
