#!/usr/bin/env bash
# Long-running differential fuzz soak: many more seeds and longer schedules
# than the bounded tier-1 campaign (tests/fuzz_campaign_test.cc). Every
# failing seed is shrunk with ddmin and its repro is written to the soak
# directory — inspect with `pivot_fuzz replay -v <repro>`, fix the bug, and
# move the repro (with a header explaining it) into tests/corpus/.
#
# Usage: ci/run_fuzz_soak.sh [seeds] [steps] [build-dir]
#   seeds      number of seeds to sweep          (default 200)
#   steps      schedule length per seed          (default 90)
#   build-dir  existing or new CMake build tree  (default build)
#   PIVOT_FUZZ_SEED   first seed of the sweep (default 1). Nightly CI sets
#                     this (e.g. to the date) so each night covers a fresh
#                     seed range yet any failure is reproducible by
#                     re-running with the same value.
set -euo pipefail

cd "$(dirname "$0")/.."
SEEDS="${1:-200}"
STEPS="${2:-90}"
BUILD_DIR="${3:-build}"
START="${PIVOT_FUZZ_SEED:-1}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target pivot_fuzz

OUT_DIR="$BUILD_DIR/fuzz-soak"
mkdir -p "$OUT_DIR"

# The corpus must stay green before new seeds are worth sweeping.
"$BUILD_DIR"/tools/pivot_fuzz replay tests/corpus/*.fuzzcase

"$BUILD_DIR"/tools/pivot_fuzz run \
  --seeds "$SEEDS" --steps "$STEPS" --start "$START" --corpus "$OUT_DIR"

echo "fuzz soak complete: $SEEDS seeds x $STEPS steps from seed $START," \
     "repros (if any) in $OUT_DIR"
