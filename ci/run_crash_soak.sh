#!/usr/bin/env bash
# Crash-consistency soak: the journal crash-point sweep under
# AddressSanitizer + UndefinedBehaviorSanitizer. Every persist.* fault
# point is crossed at every countdown (tests/journal_crash_test.cc), so a
# single pass here kills the journal writer at every reachable byte
# boundary and asserts Session::Recover lands on an oracle-equivalent,
# validator-clean prefix — with the sanitizers watching the recovery path
# itself for leaks and UB.
#
# The persist unit suite (codec round-trips, torn-tail truncation, report
# goldens) rides along: it is cheap and covers the non-crash half of the
# durability surface.
#
# Usage: ci/run_crash_soak.sh [build-dir]    (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

cmake -B "$BUILD_DIR" -S . -DPIVOT_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" --target journal_crash_tests persist_tests

"$BUILD_DIR"/tests/persist_tests
"$BUILD_DIR"/tests/journal_crash_tests

echo "crash soak complete: every journal crash point recovered clean under ASan+UBSan"
