#!/usr/bin/env bash
# Journal-growth soak: proves the two retention mechanisms keep journal
# files tracking live state instead of accumulating every frame ever
# written (DESIGN.md §13). Two phases, driven by tools/growth_soak.cc,
# each running its workload with the growth fix off and on and gating on
# the byte ratio:
#
#   * session phase — PIVOT_GROWTH_OPS (default 10000) apply/undo commits
#     against one DurableJournal with delta snapshots + compaction; the
#     compacted journal's peak must stay >= 4x below the uncompacted
#     final size, and the compacted journal must recover cleanly to the
#     same source;
#   * server phase — PIVOT_GROWTH_CLIENTS (default 64) threads committing
#     PIVOT_GROWTH_CLIENT_OPS (default 256) ops each, server.gwal
#     retention off vs on; the retained log's peak must stay >= 2x below
#     the unretained one, a quiesced explicit pass must reclaim it below
#     the retention threshold, and a restart must recover all sessions.
#
# Meant to run inside the sanitizer job (ci/run_sanitizers.sh) so ASan
# watches the retention passes racing live commit traffic.
#
# Usage: ci/run_growth_soak.sh [build-dir]    (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

cmake -B "$BUILD_DIR" -S . -DPIVOT_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" --target growth_soak

"$BUILD_DIR"/tools/growth_soak

echo "growth soak complete: journal and group log stay bounded under sustained load"
