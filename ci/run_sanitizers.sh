#!/usr/bin/env bash
# Builds the whole tree with AddressSanitizer + UndefinedBehaviorSanitizer
# and runs the tier-1 suite plus the fault-injection atomicity suite under
# both. Any sanitizer report fails the job (halt_on_error, and the build
# sets -fno-sanitize-recover=all so UBSan reports abort too). A second
# ThreadSanitizer build then re-runs the suites that exercise the
# multi-threaded paths (parallel safety checking in the undo planner,
# parallel analysis priming).
#
# Usage: ci/run_sanitizers.sh [build-dir] [tsan-build-dir]
#        (defaults: build-asan build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
TSAN_BUILD_DIR="${2:-build-tsan}"

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

cmake -B "$BUILD_DIR" -S . -DPIVOT_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"

# Tier-1: the full test suite (units, scenarios, randomized properties).
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# The fault-injection and incremental-analysis differential suites are part
# of ctest above; run the binaries once more on their own so their sanitizer
# output is easy to find in CI logs. The differential suite also exercises
# the parallel PrimeAll path, which only ASan/TSan-clean threading survives.
"$BUILD_DIR"/tests/fault_injection_tests
"$BUILD_DIR"/tests/analysis_incremental_tests

# Crash-consistency soak: the durable-journal crash-point sweep, reusing
# this script's ASan build tree (see ci/run_crash_soak.sh for the rationale).
ci/run_crash_soak.sh "$BUILD_DIR"

# Server soak: the server.* crash sweep plus the concurrent crash/recover
# cycles (see ci/run_server_soak.sh; PIVOT_FUZZ_SEED seeds the latter).
ci/run_server_soak.sh "$BUILD_DIR"

# Growth soak: journal compaction and gwal retention must keep both files
# bounded under a 10k-op session and a 64-client commit storm (see
# ci/run_growth_soak.sh).
ci/run_growth_soak.sh "$BUILD_DIR"

# Search soak: seeded backtracking-search schedules whose accepted-prefix
# oracle must hold under ASan — thousands of reject-by-undo rollbacks per
# schedule, plus a trace replay per run (see ci/run_search_soak.sh).
ci/run_search_soak.sh "$BUILD_DIR"

# Swarm soak: multi-process network chaos (torn frames, stalls, client
# and server SIGKILLs) against the TCP/unix listeners under aggressive
# session passivation; no acked commit may be lost across restarts (see
# ci/run_swarm_soak.sh).
ci/run_swarm_soak.sh "$BUILD_DIR"

echo "ASan+UBSan run complete"

# ThreadSanitizer job: rebuild with -fsanitize=thread (ASan and TSan cannot
# share a binary, hence the separate tree) and run the suites that fan work
# out across threads — the planner's parallel safety checks and the
# analysis cache's parallel priming.
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

cmake -B "$TSAN_BUILD_DIR" -S . -DPIVOT_SANITIZE_THREAD=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_BUILD_DIR" -j "$(nproc)" --target \
      planner_tests analysis_incremental_tests fault_injection_tests \
      server_tests server_crash_tests

"$TSAN_BUILD_DIR"/tests/planner_tests
"$TSAN_BUILD_DIR"/tests/analysis_incremental_tests
"$TSAN_BUILD_DIR"/tests/fault_injection_tests
# The server is the most thread-heavy subsystem in the tree: group-commit
# worker + per-connection threads + concurrent committers in the soak.
"$TSAN_BUILD_DIR"/tests/server_tests
"$TSAN_BUILD_DIR"/tests/server_crash_tests

echo "sanitizer run complete: all tests clean under ASan+UBSan and TSan"
