#!/usr/bin/env bash
# Search soak: long seeded pivot_search schedules under ASan+UBSan. Each
# run drives the searcher (apply / score / reject-by-undo, DESIGN.md §14)
# over a fuzz-generated program and then verifies the accepted-prefix
# oracle: replaying only the accepted proposals on a fresh session must
# reproduce the searched program byte-for-byte and semantically (the
# paper's claim that an undone transformation is equivalent to never
# applied — here exercised by thousands of backtracking rejects per
# schedule, with the sanitizer watching the rollback path). Every run
# also writes a trace and replays it, so the trace/replay/shrink triad
# stays honest.
#
# Tuning knobs: PIVOT_SEARCH_SEEDS (count, default 6),
# PIVOT_SEARCH_BUDGET (proposals per run, default 2000),
# PIVOT_FUZZ_SEED (base seed, default 1).
#
# Meant to run inside the sanitizer job (ci/run_sanitizers.sh), reusing
# its ASan build tree.
#
# Usage: ci/run_search_soak.sh [build-dir]    (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

cmake -B "$BUILD_DIR" -S . -DPIVOT_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" --target pivot_search_tool

SEEDS="${PIVOT_SEARCH_SEEDS:-6}"
BUDGET="${PIVOT_SEARCH_BUDGET:-2000}"
BASE="${PIVOT_FUZZ_SEED:-1}"
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT

for ((i = 0; i < SEEDS; ++i)); do
  seed=$((BASE + i))
  for mode in greedy anneal; do
    trace="$TRACE_DIR/search_${mode}_${seed}.trace"
    echo "== search soak: seed $seed mode $mode budget $BUDGET =="
    "$BUILD_DIR"/tools/pivot_search run --random "$seed" --mode "$mode" \
        --budget "$BUDGET" --seed "$seed" --trace "$trace"
    "$BUILD_DIR"/tools/pivot_search replay "$trace"
  done
done

echo "search soak complete: $((SEEDS * 2)) schedules, accepted-prefix oracle clean"
